//! Binary-search intersection (Algorithm 1 of the paper).
//!
//! The shorter list plays the role of the key array and the longer list is the
//! search tree: `|A|` lookups of cost `O(log |B|)` each. This is the kernel of
//! choice when the two adjacency lists have very different lengths, which is the
//! common case for edges incident to hub vertices in skewed graphs.

use rmatc_graph::types::VertexId;

/// Counts `|keys ∩ tree|` by binary-searching every element of `keys` in `tree`.
/// Both slices must be sorted and duplicate-free. For best performance callers
/// should pass the shorter list as `keys`, as the paper prescribes; the result is
/// correct either way.
pub fn binary_search_count(keys: &[VertexId], tree: &[VertexId]) -> u64 {
    if keys.is_empty() || tree.is_empty() {
        return 0;
    }
    let mut count = 0u64;
    for &x in keys {
        // Elements outside the tree's range cannot match; this cheap guard saves
        // log-factor work on the skewed adjacency lists of scale-free graphs.
        if x < tree[0] || x > *tree.last().expect("tree not empty") {
            continue;
        }
        if tree.binary_search(&x).is_ok() {
            count += 1;
        }
    }
    count
}

/// Variant used by the shared-memory parallel kernel: counts matches of
/// `keys[range]` against the full tree. Exposed separately so chunked parallel
/// execution can reuse the same code path.
pub fn binary_search_count_range(
    keys: &[VertexId],
    tree: &[VertexId],
    range: std::ops::Range<usize>,
) -> u64 {
    binary_search_count(&keys[range], tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_common_elements() {
        assert_eq!(binary_search_count(&[1, 5, 9], &[0, 1, 2, 5, 8, 10]), 2);
    }

    #[test]
    fn disjoint_lists_count_zero() {
        assert_eq!(binary_search_count(&[1, 2, 3], &[4, 5, 6]), 0);
        assert_eq!(binary_search_count(&[7, 8], &[1, 2, 3]), 0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(binary_search_count(&[], &[1, 2]), 0);
        assert_eq!(binary_search_count(&[1, 2], &[]), 0);
    }

    #[test]
    fn single_element_lists() {
        assert_eq!(binary_search_count(&[5], &[5]), 1);
        assert_eq!(binary_search_count(&[5], &[4]), 0);
    }

    #[test]
    fn matches_reference_on_random_lists() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..rng.gen_range(0..200))
                .map(|_| rng.gen_range(0..500))
                .collect();
            let mut b: Vec<u32> = (0..rng.gen_range(0..200))
                .map(|_| rng.gen_range(0..500))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let expected = rmatc_graph::reference::sorted_intersection_count(&a, &b);
            assert_eq!(binary_search_count(&a, &b), expected);
            assert_eq!(binary_search_count(&b, &a), expected);
        }
    }

    #[test]
    fn range_variant_matches_full_sum() {
        let keys: Vec<u32> = (0..100).collect();
        let tree: Vec<u32> = (0..200).step_by(2).collect();
        let full = binary_search_count(&keys, &tree);
        let split = binary_search_count_range(&keys, &tree, 0..50)
            + binary_search_count_range(&keys, &tree, 50..100);
        assert_eq!(full, split);
    }
}
