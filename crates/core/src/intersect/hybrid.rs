//! The hybrid method selection rule (Section III-C, Eq. 3), extended from the
//! paper's two kernels to a three-way cost model over four kernels.
//!
//! Comparing the asymptotic costs `O(|A| · log |B|)` (search-class kernels)
//! and `O(|A| + |B|)` (merge-class kernels) for `|A| ≤ |B|` gives the paper's
//! rule: merging is faster when `|B| / |A| ≤ log2(|B|) − 1`. The hybrid method
//! evaluates this per edge, so hub–leaf edges use a search kernel and balanced
//! edges use a merge kernel — which Table III shows beats either class used
//! exclusively.
//!
//! This reproduction keeps Eq. (3) as the class boundary but upgrades the
//! kernel chosen *within* each class:
//!
//! * merge class — [`simd_count`](super::simd::simd_count) (block-compare
//!   SIMD/branchless) instead of scalar SSI;
//! * search class — [`galloping_count`](super::galloping::galloping_count)
//!   (exponential probing with a running cursor) instead of
//!   restart-from-zero binary search.
//!
//! The upgraded kernels dominate asymptotically but not on every small or
//! cache-resident shape (e.g. scalar SSI edges out SIMD on ~4k-element pairs,
//! and restart binary search wins when `|B| >= |A|²` — which is why the
//! search class itself is split in two). The Eq. (3) crossover is therefore
//! kept as the paper's approximation of the class boundary, not re-derived
//! per kernel; `BENCH_intersect.json` records the measured shapes.

/// Which intersection kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IntersectMethod {
    /// Always use scalar sorted set intersection (Algorithm 2).
    SortedSetIntersection,
    /// Always use binary search, shorter list as keys (Algorithm 1).
    BinarySearch,
    /// Always use the SIMD/branchless block-compare merge kernel.
    Simd,
    /// Always use galloping search, shorter list as keys.
    Galloping,
    /// Decide per pair with the three-way cost model: Eq. (3) picks the class
    /// ([`Simd`](IntersectMethod::Simd) merge for balanced pairs, search for
    /// skewed ones) and the probe model picks the search kernel
    /// ([`Galloping`](IntersectMethod::Galloping) when `|B| < |A|²`, else
    /// [`BinarySearch`](IntersectMethod::BinarySearch)).
    Hybrid,
}

impl IntersectMethod {
    /// All methods, in the order of Table III's columns (the paper's three
    /// first, then this reproduction's kernel upgrades).
    pub fn all() -> [IntersectMethod; 5] {
        [
            IntersectMethod::Hybrid,
            IntersectMethod::SortedSetIntersection,
            IntersectMethod::BinarySearch,
            IntersectMethod::Simd,
            IntersectMethod::Galloping,
        ]
    }

    /// Table III column label.
    pub fn label(&self) -> &'static str {
        match self {
            IntersectMethod::Hybrid => "Hybrid",
            IntersectMethod::SortedSetIntersection => "SSI",
            IntersectMethod::BinarySearch => "Binary search",
            IntersectMethod::Simd => "SIMD",
            IntersectMethod::Galloping => "Galloping",
        }
    }

    /// Resolves the per-pair decision: `Hybrid` applies the three-way cost
    /// model ([`select_kernel`]), every other method is already concrete.
    ///
    /// Equivalent to [`resolve_with`](Self::resolve_with) under
    /// [`CostModel::Analytic`](super::CostModel::Analytic); kept as the
    /// shorthand for the paper's as-written rule.
    pub fn resolve(self, short_len: usize, long_len: usize) -> IntersectMethod {
        match self {
            IntersectMethod::Hybrid => select_kernel(short_len, long_len),
            concrete => concrete,
        }
    }

    /// Resolves the per-pair decision through an explicit cost model:
    /// `Hybrid` asks `model` (the analytic Eq. (3) rule, or a machine's
    /// calibrated [`CostProfile`](super::calibrate::CostProfile)), every
    /// other method is already concrete. The model only ever picks the
    /// *kernel*; counts are identical whichever one it picks.
    pub fn resolve_with(
        self,
        short_len: usize,
        long_len: usize,
        model: &super::calibrate::CostModel,
    ) -> IntersectMethod {
        match self {
            IntersectMethod::Hybrid => model.select(short_len, long_len),
            concrete => concrete,
        }
    }
}

impl std::fmt::Display for IntersectMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Eq. (3): for `short_len ≤ long_len`, returns true when a merge-class kernel
/// (SSI / SIMD) is expected to beat a search-class kernel (binary search /
/// galloping).
pub fn ssi_is_faster(short_len: usize, long_len: usize) -> bool {
    debug_assert!(short_len <= long_len);
    if short_len == 0 || long_len == 0 {
        return true;
    }
    let ratio = long_len as f64 / short_len as f64;
    ratio <= (long_len as f64).log2() - 1.0
}

/// Within the search class: returns true when galloping is expected to beat
/// restart-from-zero binary search.
///
/// With `|A|` uniformly spread keys the cursor advances `|B| / |A|` positions
/// per key on average, so galloping pays `≈ 2·log2(|B| / |A|)` probes per key
/// (exponential probe + window binary search) against binary search's
/// `log2(|B|)` — galloping wins exactly when `|B| < |A|²`. Its probes are also
/// nearly sequential while binary search's are random, so past the cache the
/// inequality is conservative in galloping's favour.
pub fn galloping_is_faster(short_len: usize, long_len: usize) -> bool {
    debug_assert!(short_len <= long_len);
    if short_len == 0 || long_len == 0 {
        return true;
    }
    let gap = (long_len as f64 / short_len as f64).max(1.0);
    2.0 * gap.log2() < (long_len as f64).log2()
}

/// The three-way cost model: Eq. (3) decides merge vs search, and the probe
/// model above decides which search kernel. Returns the concrete kernel for a
/// `(short, long)` pair.
pub fn select_kernel(short_len: usize, long_len: usize) -> IntersectMethod {
    if ssi_is_faster(short_len, long_len) {
        IntersectMethod::Simd
    } else if galloping_is_faster(short_len, long_len) {
        IntersectMethod::Galloping
    } else {
        IntersectMethod::BinarySearch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_lists_prefer_ssi() {
        // |B|/|A| = 1, log2(1024) - 1 = 9: SSI.
        assert!(ssi_is_faster(1024, 1024));
    }

    #[test]
    fn highly_skewed_lists_prefer_binary_search() {
        // |B|/|A| = 1000, log2(100000) - 1 ≈ 15.6: binary search.
        assert!(!ssi_is_faster(100, 100_000));
    }

    #[test]
    fn boundary_follows_equation_three() {
        // |B| = 4096 → log2 - 1 = 11; ratio 11 exactly satisfies "≤".
        let b = 4096usize;
        let a_at_boundary = ((b as f64) / 11.0).ceil() as usize;
        assert!(ssi_is_faster(a_at_boundary, b));
        // A slightly shorter key list pushes the ratio above the threshold.
        let a_below = (b as f64 / 12.5) as usize;
        assert!(!ssi_is_faster(a_below, b));
    }

    #[test]
    fn degenerate_lengths_default_to_ssi() {
        assert!(ssi_is_faster(0, 10));
        assert!(ssi_is_faster(0, 0));
    }

    #[test]
    fn tiny_lists_prefer_binary_search_by_the_formula() {
        // log2(4) - 1 = 1, ratio = 2 > 1 → binary search. (In practice both are
        // instantaneous; the rule is only about the asymptotic model.)
        assert!(!ssi_is_faster(2, 4));
    }

    #[test]
    fn labels_match_table3_columns() {
        let labels: Vec<&str> = IntersectMethod::all().iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["Hybrid", "SSI", "Binary search", "SIMD", "Galloping"]
        );
    }

    #[test]
    fn hybrid_resolves_by_class() {
        // Balanced: merge class, SIMD kernel.
        assert_eq!(
            IntersectMethod::Hybrid.resolve(1024, 1024),
            IntersectMethod::Simd
        );
        // Extreme skew with few keys (|B| >= |A|^2): restart binary search.
        assert_eq!(
            IntersectMethod::Hybrid.resolve(64, 65_536),
            IntersectMethod::BinarySearch
        );
        // Large skew with enough keys (|B| < |A|^2): galloping amortizes.
        assert_eq!(
            IntersectMethod::Hybrid.resolve(4_096, 4_000_000),
            IntersectMethod::Galloping
        );
        // Concrete methods resolve to themselves regardless of shape.
        for m in IntersectMethod::all() {
            if m != IntersectMethod::Hybrid {
                assert_eq!(m.resolve(1, 1_000_000), m);
                assert_eq!(m.resolve(500, 500), m);
            }
        }
    }

    #[test]
    fn galloping_rule_is_the_square_boundary() {
        assert!(galloping_is_faster(1_000, 999_000 / 2));
        assert!(!galloping_is_faster(100, 100_000));
        // Degenerate inputs never panic and default to galloping.
        assert!(galloping_is_faster(0, 0));
        assert!(galloping_is_faster(0, 50));
    }
}
