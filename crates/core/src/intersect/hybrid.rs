//! The hybrid method selection rule (Section III-C, Eq. 3).
//!
//! Comparing the asymptotic costs `O(|A| · log |B|)` (binary search) and
//! `O(|A| + |B|)` (SSI) for `|A| ≤ |B|` gives the rule: SSI is faster when
//! `|B| / |A| ≤ log2(|B|) − 1`. The hybrid method evaluates this per edge, so that
//! hub–leaf edges use binary search and balanced edges use SSI — which Table III
//! shows beats either method used exclusively.

/// Which intersection kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IntersectMethod {
    /// Always use sorted set intersection.
    SortedSetIntersection,
    /// Always use binary search (shorter list as keys).
    BinarySearch,
    /// Decide per pair with Eq. (3).
    Hybrid,
}

impl IntersectMethod {
    /// All methods, in the order of Table III's columns.
    pub fn all() -> [IntersectMethod; 3] {
        [
            IntersectMethod::Hybrid,
            IntersectMethod::SortedSetIntersection,
            IntersectMethod::BinarySearch,
        ]
    }

    /// Table III column label.
    pub fn label(&self) -> &'static str {
        match self {
            IntersectMethod::Hybrid => "Hybrid",
            IntersectMethod::SortedSetIntersection => "SSI",
            IntersectMethod::BinarySearch => "Binary search",
        }
    }
}

impl std::fmt::Display for IntersectMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Eq. (3): for `short_len ≤ long_len`, returns true when SSI is expected to be
/// faster than binary search.
pub fn ssi_is_faster(short_len: usize, long_len: usize) -> bool {
    debug_assert!(short_len <= long_len);
    if short_len == 0 || long_len == 0 {
        return true;
    }
    let ratio = long_len as f64 / short_len as f64;
    ratio <= (long_len as f64).log2() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_lists_prefer_ssi() {
        // |B|/|A| = 1, log2(1024) - 1 = 9: SSI.
        assert!(ssi_is_faster(1024, 1024));
    }

    #[test]
    fn highly_skewed_lists_prefer_binary_search() {
        // |B|/|A| = 1000, log2(100000) - 1 ≈ 15.6: binary search.
        assert!(!ssi_is_faster(100, 100_000));
    }

    #[test]
    fn boundary_follows_equation_three() {
        // |B| = 4096 → log2 - 1 = 11; ratio 11 exactly satisfies "≤".
        let b = 4096usize;
        let a_at_boundary = ((b as f64) / 11.0).ceil() as usize;
        assert!(ssi_is_faster(a_at_boundary, b));
        // A slightly shorter key list pushes the ratio above the threshold.
        let a_below = (b as f64 / 12.5) as usize;
        assert!(!ssi_is_faster(a_below, b));
    }

    #[test]
    fn degenerate_lengths_default_to_ssi() {
        assert!(ssi_is_faster(0, 10));
        assert!(ssi_is_faster(0, 0));
    }

    #[test]
    fn tiny_lists_prefer_binary_search_by_the_formula() {
        // log2(4) - 1 = 1, ratio = 2 > 1 → binary search. (In practice both are
        // instantaneous; the rule is only about the asymptotic model.)
        assert!(!ssi_is_faster(2, 4));
    }

    #[test]
    fn labels_match_table3_columns() {
        let labels: Vec<&str> = IntersectMethod::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["Hybrid", "SSI", "Binary search"]);
    }
}
