//! Sorted set intersection (Algorithm 2 of the paper).
//!
//! Both lists are traversed simultaneously, always advancing the one whose current
//! element is smaller: `O(|A| + |B|)` with perfectly sequential memory accesses,
//! which is why it wins on CPUs whenever the two lists have comparable lengths.

use rmatc_graph::types::VertexId;

/// Counts `|a ∩ b|` by merging two sorted, duplicate-free slices.
pub fn ssi_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    count
}

/// Galloping variant used by the parallel SSI kernel: intersects `long[range]`
/// against the whole of `short`. Because the chunk of the long list spans a known
/// value range, the relevant window of `short` is located with two binary searches
/// first, so the chunks can be processed independently without double counting.
pub fn ssi_count_chunk(
    short: &[VertexId],
    long: &[VertexId],
    range: std::ops::Range<usize>,
) -> u64 {
    if range.is_empty() || short.is_empty() {
        return 0;
    }
    let chunk = &long[range];
    let lo = short.partition_point(|&x| x < chunk[0]);
    let hi = short.partition_point(|&x| x <= *chunk.last().expect("chunk not empty"));
    ssi_count(&short[lo..hi], chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_common_elements() {
        assert_eq!(ssi_count(&[1, 2, 3, 8], &[2, 3, 4, 8, 9]), 3);
    }

    #[test]
    fn empty_and_disjoint() {
        assert_eq!(ssi_count(&[], &[]), 0);
        assert_eq!(ssi_count(&[1], &[]), 0);
        assert_eq!(ssi_count(&[1, 3, 5], &[2, 4, 6]), 0);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = &[1, 4, 6, 9, 15];
        let b = &[4, 9, 10, 15, 20, 22];
        assert_eq!(ssi_count(a, b), ssi_count(b, a));
    }

    #[test]
    fn matches_reference_on_random_lists() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..rng.gen_range(0..300))
                .map(|_| rng.gen_range(0..400))
                .collect();
            let mut b: Vec<u32> = (0..rng.gen_range(0..300))
                .map(|_| rng.gen_range(0..400))
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            assert_eq!(
                ssi_count(&a, &b),
                rmatc_graph::reference::sorted_intersection_count(&a, &b)
            );
        }
    }

    #[test]
    fn chunked_sum_matches_full_count() {
        let short: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let long: Vec<u32> = (0..500).collect();
        let full = ssi_count(&short, &long);
        let mut split = 0;
        for start in (0..500).step_by(97) {
            let end = (start + 97).min(500);
            split += ssi_count_chunk(&short, &long, start..end);
        }
        assert_eq!(full, split);
    }

    #[test]
    fn chunk_edge_cases() {
        assert_eq!(ssi_count_chunk(&[], &[1, 2, 3], 0..3), 0);
        assert_eq!(ssi_count_chunk(&[1, 2], &[1, 2, 3], 1..1), 0);
    }
}
