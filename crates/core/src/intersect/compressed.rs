//! Fused decompress + intersect kernels over compressed adjacency rows.
//!
//! The compressed rows of [`rmatc_graph::compressed`] never materialize on
//! the hot path: these kernels decode one 64-value block at a time into a
//! stack buffer and intersect it in the same pass — the decompress+intersect
//! analogue of the copy+intersect fusion in [`fused`](super::fused). Three
//! kernels cover the two cost classes plus a reference:
//!
//! * [`compressed_scalar_count`] — the always-correct reference: scalar block
//!   decode, branchless merge, no skipping. The differential tests pin every
//!   other kernel (and the plain-row kernels) against it.
//! * [`compressed_simd_count`] — the merge-class kernel: blocks are decoded
//!   by the fastest unpacker available (an AVX2 gather/variable-shift
//!   bitpack decoder when the CPU has it, the scalar reference otherwise)
//!   and fed to the existing SSE2/AVX2 block-compare merge
//!   ([`simd_count`]). Blocks whose header maximum
//!   falls below the merge cursor are skipped without touching their
//!   payload.
//! * [`compressed_skip_count`] — the search-class kernel for skewed pairs:
//!   keys gallop across block *headers*, so a block that cannot contain any
//!   key costs two word reads and zero decode work; candidate blocks are
//!   decoded once and the keys within range are binary-searched in the
//!   64-entry stack buffer.
//!
//! [`compressed_count_closing`] picks between the two accelerated kernels
//! per pair through the [`CostModel`] — the compressed analogue of the
//! hybrid rule, using the calibrated compressed crossover grid when one is
//! fitted ([`CostProfile::compressed_merge_is_faster`]).
//!
//! [`copy_decode_intersect`] is the miss-path fusion: a remote compressed
//! row is landed verbatim (word-for-word, so cache checksums and future
//! decodes see exactly the transferred bytes) into the single `Arc<[u32]>`
//! allocation the cache will retain, while each landed block is decoded and
//! intersected in the same pass.
//!
//! All kernels share one contract: they count
//! `|a ∩ {x ∈ decode(row) : x > bound}|` for a sorted duplicate-free `a`,
//! where `bound = Some(v)` expresses the upper-triangle filtering of the LCC
//! loops (`None` intersects against the whole row). Every kernel returns
//! identical counts; only the work shape differs.
//!
//! [`CostProfile::compressed_merge_is_faster`]: super::calibrate::CostProfile::compressed_merge_is_faster

use super::calibrate::CostModel;
use super::simd::simd_count;
use rmatc_graph::compressed::{decode_block_scalar, BlockHeader, RowCursor, BLOCK_VALUES};
use rmatc_graph::types::VertexId;
use std::mem::MaybeUninit;
use std::sync::Arc;

/// Decodes one block with the fastest decoder available; bit-identical to
/// [`decode_block_scalar`]. Returns the value count.
#[inline]
pub fn decode_block_fast(
    header: &BlockHeader,
    payload: &[u32],
    base: u32,
    out: &mut [VertexId; BLOCK_VALUES],
) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        // The AVX2 unpacker handles bitpack widths whose fields fit a
        // 4-byte load at any bit phase (w ≤ 25 ⇒ 7-bit phase + 25 bits ≤ 32).
        // Wider blocks and varint escapes are rare (they need ≥ 33 M vertex
        // gaps) and fall back to the scalar reference.
        if (1..=25).contains(&header.code) && super::simd::avx2_available() {
            // SAFETY: AVX2 support verified at runtime; width bound checked.
            unsafe { decode_bitpack_avx2(header, payload, base, out) };
            return header.count;
        }
    }
    decode_block_scalar(header, payload, base, out);
    header.count
}

/// AVX2 bitpack unpacker: gathers the 32-bit window holding each lane's
/// field, variable-shifts and masks out the deltas, then reconstructs the
/// values with an in-register inclusive prefix sum (`v_i = base + Σd + i`).
/// Tail lanes (fewer than 8 left, or whose 4-byte window would read past the
/// payload) decode scalar.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn decode_bitpack_avx2(
    header: &BlockHeader,
    payload: &[u32],
    base: u32,
    out: &mut [VertexId; BLOCK_VALUES],
) {
    use std::arch::x86_64::*;
    let w = header.code as usize;
    let n = header.count;
    let bytes = payload.len() * 4;
    let mask = _mm256_set1_epi32(((1u32 << w) - 1) as i32);
    let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let wvec = _mm256_set1_epi32(w as i32);
    let seven = _mm256_set1_epi32(7);
    let mut carry = base;
    let mut k = 0usize;
    // Lane 7's 4-byte window is the furthest read: stay inside the payload.
    while k + 8 <= n && ((k + 7) * w) / 8 + 4 <= bytes {
        let bits = _mm256_add_epi32(
            _mm256_set1_epi32((k * w) as i32),
            _mm256_mullo_epi32(iota, wvec),
        );
        let byte_off = _mm256_srli_epi32::<3>(bits);
        let shifts = _mm256_and_si256(bits, seven);
        let gathered = _mm256_i32gather_epi32::<1>(payload.as_ptr().cast::<i32>(), byte_off);
        let d = _mm256_and_si256(_mm256_srlv_epi32(gathered, shifts), mask);
        // Inclusive prefix sum across the 8 lanes: two in-lane shifts, then
        // the low half's total broadcast into the high half.
        let mut x = d;
        x = _mm256_add_epi32(x, _mm256_slli_si256::<4>(x));
        x = _mm256_add_epi32(x, _mm256_slli_si256::<8>(x));
        let low = _mm256_permute2x128_si256::<0x08>(x, x);
        x = _mm256_add_epi32(x, _mm256_shuffle_epi32::<0xff>(low));
        let vals = _mm256_add_epi32(_mm256_add_epi32(x, iota), _mm256_set1_epi32(carry as i32));
        _mm256_storeu_si256(out.as_mut_ptr().add(k).cast(), vals);
        carry = out[k + 7].wrapping_add(1);
        k += 8;
    }
    // Scalar tail from bit position k·w, continuing the delta chain. Reads
    // clamp past the payload end (zeros) so a corrupted header claiming more
    // values than the payload carries decodes garbage instead of panicking.
    let mut bitpos = k * w;
    let mut value = carry as u64;
    let field_mask = (1u64 << w) - 1;
    for slot in out.iter_mut().take(n).skip(k) {
        let wi = bitpos / 32;
        let sh = bitpos % 32;
        let mut cur = (payload.get(wi).copied().unwrap_or(0) as u64) >> sh;
        if sh + w > 32 {
            cur |= (payload.get(wi + 1).copied().unwrap_or(0) as u64) << (32 - sh);
        }
        value += cur & field_mask;
        *slot = value as VertexId;
        value += 1;
        bitpos += w;
    }
}

/// Branchless merge of one decoded block against the remaining keys.
/// Returns the matches and how many keys were consumed (everything `≤` the
/// block maximum — those can never match a later block).
#[inline]
fn merge_block(block: &[VertexId], a: &[VertexId]) -> (u64, usize) {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < block.len() && j < a.len() {
        let x = block[i];
        let y = a[j];
        count += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    (count, j)
}

/// First in-block index past `bound` (0 when unbounded). Only the first
/// decoded block of a row can hold values at or below the bound — later
/// blocks start past the previous block's maximum — but the partition is
/// O(log 64) and keeping it unconditional keeps the kernels obviously equal.
#[inline]
fn block_start(block: &[VertexId], bound: Option<VertexId>) -> usize {
    match bound {
        Some(b) => block.partition_point(|&x| x <= b),
        None => 0,
    }
}

/// Scalar reference: decodes every block and merges branchlessly. No
/// skipping, no SIMD — the fixed point the accelerated kernels and the
/// plain-row differential suites are tested against.
pub fn compressed_scalar_count(a: &[VertexId], row: &[u32], bound: Option<VertexId>) -> u64 {
    let mut cursor = RowCursor::new(row);
    let mut buf = [0u32; BLOCK_VALUES];
    let mut count = 0u64;
    let mut ai = 0usize;
    while !cursor.is_done() {
        let n = cursor.decode_block(&mut buf);
        let start = block_start(&buf[..n], bound);
        let (c, used) = merge_block(&buf[start..n], &a[ai..]);
        count += c;
        ai += used;
    }
    count
}

/// Merge-class kernel: decodes candidate blocks with [`decode_block_fast`]
/// and feeds them to the SSE2/AVX2 block-compare merge; blocks wholly below
/// the bound or the merge cursor are skipped via their header maximum
/// without touching the payload.
pub fn compressed_simd_count(a: &[VertexId], row: &[u32], bound: Option<VertexId>) -> u64 {
    let mut cursor = RowCursor::new(row);
    let mut buf = [0u32; BLOCK_VALUES];
    let mut count = 0u64;
    let mut ai = 0usize;
    while ai < a.len() {
        let Some(h) = cursor.peek() else { break };
        if bound.is_some_and(|b| h.max <= b) || h.max < a[ai] {
            cursor.skip_block();
            continue;
        }
        let n = decode_block_fast(&h, cursor.payload(&h), cursor.base(), &mut buf);
        cursor.skip_block();
        let start = block_start(&buf[..n], bound);
        let hi = ai + a[ai..].partition_point(|&x| x <= h.max);
        count += simd_count(&buf[start..n], &a[ai..hi]);
        ai = hi;
    }
    count
}

/// Search-class kernel for skewed pairs (few keys against a long compressed
/// row): keys advance across block headers, skipping — without decoding —
/// every block whose maximum is below the next key; a candidate block is
/// decoded once and all keys within its range binary-search the 64-entry
/// stack buffer.
pub fn compressed_skip_count(a: &[VertexId], row: &[u32], bound: Option<VertexId>) -> u64 {
    let mut cursor = RowCursor::new(row);
    let mut buf = [0u32; BLOCK_VALUES];
    let mut count = 0u64;
    // Keys at or below the bound cannot match a row value above it.
    let mut ai = match bound {
        Some(b) => a.partition_point(|&x| x <= b),
        None => 0,
    };
    while ai < a.len() {
        let Some(h) = cursor.peek() else { break };
        if h.max < a[ai] {
            cursor.skip_block();
            continue;
        }
        let n = decode_block_fast(&h, cursor.payload(&h), cursor.base(), &mut buf);
        cursor.skip_block();
        let start = block_start(&buf[..n], bound);
        while ai < a.len() && a[ai] <= h.max {
            count += u64::from(buf[start..n].binary_search(&a[ai]).is_ok());
            ai += 1;
        }
    }
    count
}

/// The per-pair dispatcher: the compressed analogue of the hybrid rule.
/// Merge-class shapes (and every pair where the keys outnumber the row, for
/// which key-wise search degenerates) run [`compressed_simd_count`]; skewed
/// few-keys pairs run [`compressed_skip_count`]. The class boundary comes
/// from the [`CostModel`] — analytic Eq. (3) by default, or the calibrated
/// compressed crossover grid.
pub fn compressed_count_closing(
    a: &[VertexId],
    row: &[u32],
    bound: Option<VertexId>,
    model: &CostModel,
) -> u64 {
    let n = rmatc_graph::compressed::decoded_len(row);
    if a.is_empty() || n == 0 {
        return 0;
    }
    let (short, long) = (a.len().min(n), a.len().max(n));
    if a.len() > n || model.compressed_merge_is_faster(short, long) {
        compressed_simd_count(a, row, bound)
    } else {
        compressed_skip_count(a, row, bound)
    }
}

/// Lands `src` (the transferred words of one compressed row) into
/// `dst[at..at + src.len()]`.
fn write_words(dst: &mut [MaybeUninit<u32>], at: usize, src: &[u32]) {
    debug_assert!(at + src.len() <= dst.len());
    // SAFETY: range checked above; `MaybeUninit<u32>` and `u32` share layout.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr().add(at).cast(), src.len());
    }
}

/// Miss-path fusion: copies the compressed row `src` word-for-word into the
/// single freshly allocated `Arc<[u32]>` the cache will retain, decoding and
/// intersecting each block against `a` in the same pass. Returns the landed
/// buffer (an exact copy of `src`) and
/// `|a ∩ {x ∈ decode(src) : x > bound}|` — the compressed counterpart of
/// [`copy_intersect`](super::fused::copy_intersect).
///
/// Blocks that cannot contribute (header maximum below the bound or the
/// current key) are landed by the word copy but never decoded; the count is
/// identical to [`compressed_count_closing`] on the landed row.
pub fn copy_decode_intersect(
    src: &[u32],
    a: &[VertexId],
    bound: Option<VertexId>,
    model: &CostModel,
) -> (Arc<[u32]>, u64) {
    let mut buf = Arc::new_uninit_slice(src.len());
    let dst = Arc::get_mut(&mut buf).expect("freshly allocated Arc is unique");
    let n = rmatc_graph::compressed::decoded_len(src);
    let use_skip = !(a.is_empty() || n == 0)
        && a.len() <= n
        && !model.compressed_merge_is_faster(a.len().min(n), a.len().max(n));
    let mut cursor = RowCursor::new(src);
    let mut block = [0u32; BLOCK_VALUES];
    let mut count = 0u64;
    let mut copied = 0usize;
    let mut ai = match (use_skip, bound) {
        (true, Some(b)) => a.partition_point(|&x| x <= b),
        _ => 0,
    };
    while let Some(h) = cursor.peek() {
        let end = cursor.position() + 2 + h.payload_words;
        write_words(dst, copied, &src[copied..end]);
        copied = end;
        let dead =
            ai >= a.len() || h.max < a[ai] || (!use_skip && bound.is_some_and(|b| h.max <= b));
        if dead {
            cursor.skip_block();
            continue;
        }
        let nb = decode_block_fast(&h, cursor.payload(&h), cursor.base(), &mut block);
        cursor.skip_block();
        let start = block_start(&block[..nb], bound);
        if use_skip {
            while ai < a.len() && a[ai] <= h.max {
                count += u64::from(block[start..nb].binary_search(&a[ai]).is_ok());
                ai += 1;
            }
        } else {
            let hi = ai + a[ai..].partition_point(|&x| x <= h.max);
            count += simd_count(&block[start..nb], &a[ai..hi]);
            ai = hi;
        }
    }
    write_words(dst, copied, &src[copied..]);
    // SAFETY: every word of `src` was landed — blocks by the loop, the count
    // word and any trailing words by the final copy.
    (unsafe { buf.assume_init() }, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rmatc_graph::compressed::compress_row;

    fn random_sorted(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn reference(a: &[u32], row_values: &[u32], bound: Option<u32>) -> u64 {
        row_values
            .iter()
            .filter(|&&x| bound.is_none_or(|b| x > b))
            .filter(|x| a.binary_search(x).is_ok())
            .count() as u64
    }

    #[test]
    fn corrupted_rows_never_panic_any_kernel() {
        // Fault injection hands the fused kernels corrupted transfer
        // buffers before the checksum retry can reject them: every kernel
        // must produce a (discarded) garbage count without reading out of
        // bounds or looping forever. `copy_decode_intersect` must still
        // land the buffer word-for-word so the quarantine checksum sees
        // exactly the corrupted bytes.
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let model = CostModel::Analytic;
        let a = random_sorted(&mut rng, 200, 1 << 16);
        let mut valid = Vec::new();
        compress_row(&random_sorted(&mut rng, 500, 1 << 20), &mut valid);
        for case in 0..300 {
            let row: Vec<u32> = match case % 3 {
                0 => (0..rng.gen_range(0..50)).map(|_| rng.gen()).collect(),
                1 => valid[..rng.gen_range(0..=valid.len())].to_vec(),
                _ => {
                    let mut r = valid.clone();
                    let at = rng.gen_range(0..r.len());
                    r[at] ^= rng.gen::<u32>();
                    r
                }
            };
            let bound = if case % 2 == 0 { None } else { Some(1 << 15) };
            compressed_scalar_count(&a, &row, bound);
            compressed_simd_count(&a, &row, bound);
            compressed_skip_count(&a, &row, bound);
            compressed_count_closing(&a, &row, bound, &model);
            let (landed, _) = copy_decode_intersect(&row, &a, bound, &model);
            assert_eq!(&landed[..], &row[..], "landed buffer must be verbatim");
        }
    }

    #[test]
    fn all_kernels_agree_with_reference_on_random_pairs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let model = CostModel::Analytic;
        for _ in 0..200 {
            let la = rng.gen_range(0..400);
            let lb = rng.gen_range(0..400);
            let a = random_sorted(&mut rng, la, 700);
            let b = random_sorted(&mut rng, lb, 700);
            let mut row = Vec::new();
            compress_row(&b, &mut row);
            for bound in [None, Some(0u32), Some(350), Some(699), Some(u32::MAX)] {
                let expected = reference(&a, &b, bound);
                assert_eq!(compressed_scalar_count(&a, &row, bound), expected, "scalar");
                assert_eq!(compressed_simd_count(&a, &row, bound), expected, "simd");
                assert_eq!(compressed_skip_count(&a, &row, bound), expected, "skip");
                assert_eq!(
                    compressed_count_closing(&a, &row, bound, &model),
                    expected,
                    "dispatch"
                );
                let (landed, count) = copy_decode_intersect(&row, &a, bound, &model);
                assert_eq!(&*landed, &row[..], "landed row must be an exact copy");
                assert_eq!(count, expected, "fused");
            }
        }
    }

    #[test]
    fn wide_and_varint_blocks_agree() {
        // Huge gaps force w > 25 (AVX2 fallback) and varint escapes.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let model = CostModel::Analytic;
        for _ in 0..50 {
            let mut b: Vec<u32> = Vec::new();
            let mut v = 0u64;
            while b.len() < 200 && v < u32::MAX as u64 {
                v += if rng.gen_bool(0.1) {
                    rng.gen_range(1 << 26..1u64 << 31)
                } else {
                    rng.gen_range(1..100)
                };
                if v > u32::MAX as u64 {
                    break;
                }
                b.push(v as u32);
            }
            let a = random_sorted(&mut rng, 150, u32::MAX);
            let mut row = Vec::new();
            compress_row(&b, &mut row);
            for bound in [None, Some(1u32 << 30)] {
                let expected = reference(&a, &b, bound);
                assert_eq!(compressed_scalar_count(&a, &row, bound), expected);
                assert_eq!(compressed_simd_count(&a, &row, bound), expected);
                assert_eq!(compressed_skip_count(&a, &row, bound), expected);
                let (landed, count) = copy_decode_intersect(&row, &a, bound, &model);
                assert_eq!(&*landed, &row[..]);
                assert_eq!(count, expected);
            }
        }
    }

    #[test]
    fn fast_decoder_matches_scalar_on_every_width() {
        // One row per bitpack width: deltas just under 2^w.
        for w in 0..=31u32 {
            let mut values = Vec::new();
            let mut v = 0u64;
            let step = 1u64 << w;
            for i in 0..100 {
                v += 1 + (step - 1) * u64::from(i % 3 != 0);
                if v > u32::MAX as u64 {
                    break;
                }
                values.push(v as u32);
            }
            let mut row = Vec::new();
            compress_row(&values, &mut row);
            let mut cursor = RowCursor::new(&row);
            let mut scalar = [0u32; BLOCK_VALUES];
            let mut fast = [0u32; BLOCK_VALUES];
            while let Some(h) = cursor.peek() {
                decode_block_scalar(&h, cursor.payload(&h), cursor.base(), &mut scalar);
                let n = decode_block_fast(&h, cursor.payload(&h), cursor.base(), &mut fast);
                assert_eq!(n, h.count);
                assert_eq!(&scalar[..n], &fast[..n], "w={w} code={}", h.code);
                cursor.skip_block();
            }
        }
    }

    #[test]
    fn skip_kernel_never_decodes_unreachable_blocks() {
        // Structural check through counts only: a single key past the row's
        // end must return 0 whichever kernel runs (and not panic while
        // skipping every block).
        let b: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let mut row = Vec::new();
        compress_row(&b, &mut row);
        assert_eq!(compressed_skip_count(&[50_000], &row, None), 0);
        assert_eq!(compressed_simd_count(&[50_000], &row, None), 0);
        assert_eq!(compressed_skip_count(&[1500], &row, None), 1);
    }

    #[test]
    fn degenerate_inputs() {
        let model = CostModel::Analytic;
        let mut empty_row = Vec::new();
        compress_row(&[], &mut empty_row);
        assert_eq!(
            compressed_count_closing(&[1, 2], &empty_row, None, &model),
            0
        );
        assert_eq!(compressed_count_closing(&[], &empty_row, None, &model), 0);
        let mut row = Vec::new();
        compress_row(&[5, 10], &mut row);
        assert_eq!(compressed_count_closing(&[], &row, None, &model), 0);
        let (landed, count) = copy_decode_intersect(&row, &[], None, &model);
        assert_eq!(&*landed, &row[..]);
        assert_eq!(count, 0);
        let (landed, count) = copy_decode_intersect(&empty_row, &[1], None, &model);
        assert_eq!(&*landed, &empty_row[..]);
        assert_eq!(count, 0);
    }
}
