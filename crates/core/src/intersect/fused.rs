//! Fused copy + intersect kernel for remote-adjacency misses.
//!
//! When a remote row misses the CLaMPI cache, the simulated RMA transfer has
//! to copy it off the exposed window into the buffer the cache will retain —
//! and the very next thing the LCC worker does with that row is intersect it
//! against the local row. Doing those as two passes reads the row twice;
//! [`copy_intersect`] does both in one: the same SSE2/AVX2 block loads that
//! feed the all-pairs compare of [`simd_count`] are stored straight into the
//! destination buffer, so the row is intersected *in the same pass that lands
//! it in the cache*.
//!
//! The destination is allocated here as the `Arc<[u32]>` the cache insert
//! takes by refcount — the transfer's single allocation, never copied again.
//! Like [`simd_count`], the kernel requires both inputs sorted and
//! duplicate-free, and is merge-class (`O(|A| + |B|)`): callers route skewed
//! pairs to the search-class kernels and fall back to a plain copy there (see
//! `distributed::reader`).
//!
//! [`simd_count`]: super::simd::simd_count

use super::simd::branchless_count;
use rmatc_graph::types::VertexId;
use std::mem::MaybeUninit;
use std::sync::Arc;

/// Copies `src` into a freshly allocated shared buffer and counts
/// `|src[from..] ∩ local|` in the same pass. Returns the landed buffer (an
/// exact copy of `src`) and the count.
///
/// `from` is the start of the intersecting suffix: the upper-triangle
/// offsetting of the LCC worker excludes the prefix of the remote row up to
/// the current edge's endpoint, but the *whole* row still has to land in the
/// cache. The prefix is copied wholesale, the suffix through the fused loop.
pub fn copy_intersect(src: &[VertexId], from: usize, local: &[VertexId]) -> (Arc<[VertexId]>, u64) {
    assert!(from <= src.len(), "suffix start {from} > row {}", src.len());
    let mut buf = Arc::new_uninit_slice(src.len());
    let dst = Arc::get_mut(&mut buf).expect("freshly allocated Arc is unique");
    write_block(dst, 0, &src[..from]);
    let count = fused_tail(&src[from..], local, dst, from);
    // SAFETY: write_block landed [0, from) and fused_tail landed [from, len).
    (unsafe { buf.assume_init() }, count)
}

/// Lands `src` into `dst[at..at + src.len()]`.
fn write_block(dst: &mut [MaybeUninit<VertexId>], at: usize, src: &[VertexId]) {
    debug_assert!(at + src.len() <= dst.len());
    // SAFETY: range checked above; `MaybeUninit<u32>` and `u32` share layout.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr().add(at).cast(), src.len());
    }
}

/// Dispatches the fused suffix loop to the fastest kernel available, landing
/// `tail` into `dst[base..]` and returning `|tail ∩ local|`.
fn fused_tail(
    tail: &[VertexId],
    local: &[VertexId],
    dst: &mut [MaybeUninit<VertexId>],
    base: usize,
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if super::simd::avx2_available() {
            // SAFETY: AVX2 support verified at runtime.
            return unsafe { fused_avx2(tail, local, dst, base) };
        }
        // SSE2 is part of the x86_64 baseline.
        unsafe { fused_sse2(tail, local, dst, base) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fused_scalar(tail, local, dst, base)
    }
}

/// Branch-free scalar fallback: stores the current `tail` element on every
/// step (idempotent until the cursor advances past it), then lands whatever
/// remains once either list is exhausted.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn fused_scalar(
    tail: &[VertexId],
    local: &[VertexId],
    dst: &mut [MaybeUninit<VertexId>],
    base: usize,
) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < tail.len() && j < local.len() {
        let x = tail[i];
        let y = local[j];
        dst[base + i].write(x);
        count += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    write_block(dst, base + i, &tail[i..]);
    count
}

/// 4-wide fused block loop: the block loaded for the all-pairs compare is
/// stored into the destination in the same iteration.
#[cfg(target_arch = "x86_64")]
unsafe fn fused_sse2(
    tail: &[VertexId],
    local: &[VertexId],
    dst: &mut [MaybeUninit<VertexId>],
    base: usize,
) -> u64 {
    use std::arch::x86_64::*;
    const W: usize = 4;
    let a_blocks = tail.len() & !(W - 1);
    let b_blocks = local.len() & !(W - 1);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut count = 0u64;
    if a_blocks > 0 && b_blocks > 0 {
        loop {
            let va = _mm_loadu_si128(tail.as_ptr().add(i).cast());
            // Land the block; re-stored unchanged if the cursor does not advance.
            _mm_storeu_si128(dst.as_mut_ptr().add(base + i).cast(), va);
            let vb = _mm_loadu_si128(local.as_ptr().add(j).cast());
            let m0 = _mm_cmpeq_epi32(va, vb);
            let m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32::<0b00_11_10_01>(vb));
            let m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32::<0b01_00_11_10>(vb));
            let m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32::<0b10_01_00_11>(vb));
            let m = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
            count += _mm_movemask_ps(_mm_castsi128_ps(m)).count_ones() as u64;
            let a_max = *tail.get_unchecked(i + W - 1);
            let b_max = *local.get_unchecked(j + W - 1);
            i += W * usize::from(a_max <= b_max);
            j += W * usize::from(b_max <= a_max);
            if i >= a_blocks || j >= b_blocks {
                break;
            }
        }
    }
    write_block(dst, base + i, &tail[i..]);
    count + branchless_count(&tail[i..], &local[j..])
}

/// 8-wide fused block loop (rotations via cross-lane permutes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fused_avx2(
    tail: &[VertexId],
    local: &[VertexId],
    dst: &mut [MaybeUninit<VertexId>],
    base: usize,
) -> u64 {
    use std::arch::x86_64::*;
    const W: usize = 8;
    let a_blocks = tail.len() & !(W - 1);
    let b_blocks = local.len() & !(W - 1);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut count = 0u64;
    if a_blocks > 0 && b_blocks > 0 {
        let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
        loop {
            let va = _mm256_loadu_si256(tail.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(base + i).cast(), va);
            let mut vb = _mm256_loadu_si256(local.as_ptr().add(j).cast());
            let mut m = _mm256_cmpeq_epi32(va, vb);
            for _ in 0..W - 1 {
                vb = _mm256_permutevar8x32_epi32(vb, rot1);
                m = _mm256_or_si256(m, _mm256_cmpeq_epi32(va, vb));
            }
            count += _mm256_movemask_ps(_mm256_castsi256_ps(m)).count_ones() as u64;
            let a_max = *tail.get_unchecked(i + W - 1);
            let b_max = *local.get_unchecked(j + W - 1);
            i += W * usize::from(a_max <= b_max);
            j += W * usize::from(b_max <= a_max);
            if i >= a_blocks || j >= b_blocks {
                break;
            }
        }
    }
    write_block(dst, base + i, &tail[i..]);
    count + branchless_count(&tail[i..], &local[j..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::ssi::ssi_count;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_sorted(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn copies_exactly_and_counts_like_ssi() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let (la, lb) = (rng.gen_range(0..400), rng.gen_range(0..400));
            let src = random_sorted(&mut rng, la, 600);
            let local = random_sorted(&mut rng, lb, 600);
            let from = rng.gen_range(0..=src.len());
            let (landed, count) = copy_intersect(&src, from, &local);
            assert_eq!(&*landed, &src[..], "landed row must be an exact copy");
            assert_eq!(
                count,
                ssi_count(&src[from..], &local),
                "src={src:?} from={from} local={local:?}"
            );
        }
    }

    #[test]
    fn handles_blocks_and_tails() {
        for la in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
            for lb in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
                let src: Vec<u32> = (0..la as u32).map(|x| x * 2).collect();
                let local: Vec<u32> = (0..lb as u32).map(|x| x * 3).collect();
                let (landed, count) = copy_intersect(&src, 0, &local);
                assert_eq!(&*landed, &src[..], "la={la} lb={lb}");
                assert_eq!(count, ssi_count(&src, &local), "la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn suffix_prefix_split_is_respected() {
        let src: Vec<u32> = (0..100).collect();
        let local: Vec<u32> = (0..100).collect();
        for from in [0usize, 1, 4, 50, 99, 100] {
            let (landed, count) = copy_intersect(&src, from, &local);
            assert_eq!(&*landed, &src[..]);
            assert_eq!(count, (100 - from) as u64, "from={from}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (landed, count) = copy_intersect(&[], 0, &[1, 2, 3]);
        assert!(landed.is_empty());
        assert_eq!(count, 0);
        let (landed, count) = copy_intersect(&[1, 2, 3], 0, &[]);
        assert_eq!(&*landed, &[1, 2, 3]);
        assert_eq!(count, 0);
        let extremes = vec![0u32, 1, u32::MAX - 1, u32::MAX];
        let (landed, count) = copy_intersect(&extremes, 0, &[0u32, 2, u32::MAX]);
        assert_eq!(&*landed, &extremes[..]);
        assert_eq!(count, 2);
    }

    /// The dispatcher only exercises one x86 path per machine; drive both
    /// fused kernels explicitly so the SSE2 loop is covered on AVX2 hosts.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_and_avx2_fused_paths_agree_with_scalar() {
        type FusedKernel<'k> = &'k dyn Fn(&[u32], &[u32], &mut [MaybeUninit<u32>], usize) -> u64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for _ in 0..100 {
            let (la, lb) = (rng.gen_range(0..300), rng.gen_range(0..300));
            let src = random_sorted(&mut rng, la, 500);
            let local = random_sorted(&mut rng, lb, 500);
            let expected = ssi_count(&src, &local);
            let run = |kernel: FusedKernel| {
                let mut buf = Arc::new_uninit_slice(src.len());
                let dst = Arc::get_mut(&mut buf).unwrap();
                let count = kernel(&src, &local, dst, 0);
                // SAFETY: every fused kernel lands the whole row.
                (unsafe { buf.assume_init() }, count)
            };
            let (landed, count) = run(&fused_scalar);
            assert_eq!((&*landed, count), (&src[..], expected), "scalar");
            // SAFETY: SSE2 is part of the x86_64 baseline.
            let (landed, count) = run(&|a, b, d, base| unsafe { fused_sse2(a, b, d, base) });
            assert_eq!((&*landed, count), (&src[..], expected), "sse2");
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified.
                let (landed, count) = run(&|a, b, d, base| unsafe { fused_avx2(a, b, d, base) });
                assert_eq!((&*landed, count), (&src[..], expected), "avx2");
            }
        }
    }
}
