//! Frontier-intersection kernels.
//!
//! Triangle counting reduces to computing `|adj(v_i) ∩ adj(v_j)|` for every edge.
//! The paper uses two kernels — binary search and sorted set intersection (SSI) —
//! plus a hybrid rule (Eq. 3) that picks per edge, and parallelizes the intersection
//! itself across threads (Section III-C).
//!
//! This reproduction extends the suite with two faster kernels in the same two
//! cost classes, selected by the same Eq. (3) boundary:
//!
//! * [`simd`] — branchless/SIMD block-compare merge (`O(|A| + |B|)`), the
//!   merge-class upgrade of SSI;
//! * [`galloping`] — exponential-probe search with a running cursor
//!   (`O(|A| · (1 + log(|B|/|A|)))`), the search-class upgrade of binary search;
//! * [`fused`] — the copy+intersect variant of the SIMD merge used by the
//!   distributed path: a remote row that missed the CLaMPI cache is
//!   intersected against the local row in the same block pass that lands it
//!   in the cache buffer;
//! * [`compressed`] — fused decompress+intersect kernels over the
//!   delta/varint rows of [`rmatc_graph::compressed`]: a scalar reference, a
//!   block-decode (AVX2-unpacked) merge feeding [`simd_count`], a
//!   header-skipping search variant that gallops across block maxima without
//!   decoding, and the copy+decode+intersect miss path
//!   ([`copy_decode_intersect`]);
//! * [`calibrate`] — ATLAS-style runtime calibration of the hybrid rule: a
//!   startup micro-probe measures where this machine's kernels actually
//!   cross over, and the fitted [`CostProfile`] replaces the analytic
//!   boundaries via [`CostModel::Calibrated`] (the analytic model stays the
//!   deterministic default).
//!
//! Every kernel is a plain-slice entry point (`&[VertexId]`), so callers can
//! run them directly over borrowed views — local CSR rows, cached CLaMPI
//! entries, or fetched transfer buffers — without materializing owned copies.

pub mod binary;
pub mod calibrate;
pub mod compressed;
pub mod fused;
pub mod galloping;
pub mod hybrid;
pub mod parallel;
pub mod simd;
pub mod ssi;

pub use binary::binary_search_count;
pub use calibrate::{CostModel, CostProfile};
pub use compressed::{
    compressed_count_closing, compressed_scalar_count, compressed_simd_count,
    compressed_skip_count, copy_decode_intersect,
};
pub use fused::copy_intersect;
pub use galloping::galloping_count;
pub use hybrid::{galloping_is_faster, select_kernel, ssi_is_faster, IntersectMethod};
pub use parallel::ParallelIntersector;
pub use simd::simd_count;
pub use ssi::ssi_count;

use rmatc_graph::types::VertexId;

/// A sequential intersector: picks the kernel according to the configured
/// method, resolving `Hybrid` through its [`CostModel`] (analytic by
/// default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Intersector {
    method: IntersectMethod,
    model: CostModel,
}

impl Intersector {
    /// Creates an intersector for the given method, with the analytic cost
    /// model.
    pub fn new(method: IntersectMethod) -> Self {
        Self {
            method,
            model: CostModel::Analytic,
        }
    }

    /// Same intersector resolving `Hybrid` through `model` instead.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// The configured method.
    pub fn method(&self) -> IntersectMethod {
        self.method
    }

    /// The cost model `Hybrid` resolves through.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Counts `|a ∩ b|` for two sorted, duplicate-free slices.
    pub fn count(&self, a: &[VertexId], b: &[VertexId]) -> u64 {
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        match self
            .method
            .resolve_with(short.len(), long.len(), &self.model)
        {
            IntersectMethod::SortedSetIntersection => ssi_count(short, long),
            IntersectMethod::BinarySearch => binary_search_count(short, long),
            IntersectMethod::Simd => simd_count(short, long),
            IntersectMethod::Galloping => galloping_count(short, long),
            IntersectMethod::Hybrid => unreachable!("resolve() returns a concrete method"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_agree_on_simple_inputs() {
        let a = &[1, 3, 5, 7, 9, 11];
        let b = &[2, 3, 4, 5, 6, 7, 20];
        for method in IntersectMethod::all() {
            assert_eq!(Intersector::new(method).count(a, b), 3, "{method:?}");
            assert_eq!(
                Intersector::new(method).count(b, a),
                3,
                "{method:?} swapped"
            );
        }
    }

    #[test]
    fn empty_inputs_yield_zero() {
        for method in IntersectMethod::all() {
            let ix = Intersector::new(method);
            assert_eq!(ix.count(&[], &[1, 2, 3]), 0);
            assert_eq!(ix.count(&[1, 2, 3], &[]), 0);
            assert_eq!(ix.count(&[], &[]), 0);
        }
    }

    #[test]
    fn identical_lists_intersect_fully() {
        let a: Vec<u32> = (0..1000).map(|x| x * 3).collect();
        for method in IntersectMethod::all() {
            assert_eq!(Intersector::new(method).count(&a, &a), 1000);
        }
    }

    #[test]
    fn methods_agree_on_hub_leaf_skew() {
        let small = vec![10u32, 500_000, 900_000];
        let big: Vec<u32> = (0..1_000_000).step_by(2).collect();
        for method in IntersectMethod::all() {
            assert_eq!(
                Intersector::new(method).count(&small, &big),
                3,
                "{method:?}"
            );
            assert_eq!(
                Intersector::new(method).count(&big, &small),
                3,
                "{method:?}"
            );
        }
    }
}
