//! Frontier-intersection kernels.
//!
//! Triangle counting reduces to computing `|adj(v_i) ∩ adj(v_j)|` for every edge.
//! The paper uses two kernels — binary search and sorted set intersection (SSI) —
//! plus a hybrid rule (Eq. 3) that picks per edge, and parallelizes the intersection
//! itself across threads (Section III-C).

pub mod binary;
pub mod hybrid;
pub mod parallel;
pub mod ssi;

pub use binary::binary_search_count;
pub use hybrid::{ssi_is_faster, IntersectMethod};
pub use parallel::ParallelIntersector;
pub use ssi::ssi_count;

use rmatc_graph::types::VertexId;

/// A sequential intersector: picks the kernel according to the configured method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Intersector {
    method: IntersectMethod,
}

impl Intersector {
    /// Creates an intersector for the given method.
    pub fn new(method: IntersectMethod) -> Self {
        Self { method }
    }

    /// The configured method.
    pub fn method(&self) -> IntersectMethod {
        self.method
    }

    /// Counts `|a ∩ b|` for two sorted, duplicate-free slices.
    pub fn count(&self, a: &[VertexId], b: &[VertexId]) -> u64 {
        match self.method {
            IntersectMethod::SortedSetIntersection => ssi_count(a, b),
            IntersectMethod::BinarySearch => binary_search_count(a, b),
            IntersectMethod::Hybrid => {
                let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                if ssi_is_faster(short.len(), long.len()) {
                    ssi_count(short, long)
                } else {
                    binary_search_count(short, long)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_agree_on_simple_inputs() {
        let a = &[1, 3, 5, 7, 9, 11];
        let b = &[2, 3, 4, 5, 6, 7, 20];
        for method in [
            IntersectMethod::SortedSetIntersection,
            IntersectMethod::BinarySearch,
            IntersectMethod::Hybrid,
        ] {
            assert_eq!(Intersector::new(method).count(a, b), 3, "{method:?}");
            assert_eq!(Intersector::new(method).count(b, a), 3, "{method:?} swapped");
        }
    }

    #[test]
    fn empty_inputs_yield_zero() {
        for method in [
            IntersectMethod::SortedSetIntersection,
            IntersectMethod::BinarySearch,
            IntersectMethod::Hybrid,
        ] {
            let ix = Intersector::new(method);
            assert_eq!(ix.count(&[], &[1, 2, 3]), 0);
            assert_eq!(ix.count(&[1, 2, 3], &[]), 0);
            assert_eq!(ix.count(&[], &[]), 0);
        }
    }

    #[test]
    fn identical_lists_intersect_fully() {
        let a: Vec<u32> = (0..1000).map(|x| x * 3).collect();
        for method in [
            IntersectMethod::SortedSetIntersection,
            IntersectMethod::BinarySearch,
            IntersectMethod::Hybrid,
        ] {
            assert_eq!(Intersector::new(method).count(&a, &a), 1000);
        }
    }
}
