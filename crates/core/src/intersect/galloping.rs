//! Galloping (exponential-probe) search intersection with batched window
//! resolution.
//!
//! Algorithm 1 binary-searches every key from scratch: `O(|A| · log |B|)`
//! probes, each search walking the whole tree depth again even though the keys
//! are sorted and strictly increasing, and each probe waiting on the previous
//! one — a serial dependent-load chain. This kernel exploits both structural
//! facts the paper's kernel ignores:
//!
//! 1. **Sortedness** — a cursor remembers where the previous key landed and
//!    probes forward with exponentially growing steps (seeded with the
//!    previous key's observed advance), bracketing each key's window in
//!    `O(1 + log(|B|/|A|))` probes instead of `log |B|`.
//! 2. **Batching** — the bracketed windows of up to 64 consecutive keys are
//!    then resolved *in lockstep*: one branchless binary-search step per key
//!    per round, so the 64 loads of a round are independent and the memory
//!    system overlaps them, where per-key binary search serializes on every
//!    load. This converts the dominant cost from `rounds × latency` into
//!    `rounds × (latency / memory-level-parallelism)`.
//!
//! Total work is `O(|A| · (1 + log(|B| / |A|)))` — the information-theoretic
//! optimum for intersecting sorted lists of very different lengths. This is
//! the search-class kernel the three-way hybrid rule picks for skewed edges
//! with enough keys to amortize (see [`super::hybrid`]).
//!
//! Below one lockstep batch the gallop/batch machinery costs more than it
//! saves (there are no independent loads to overlap), so key sets under
//! `BATCH` (64 keys) short-circuit to plain restart binary search — which makes
//! `IntersectMethod::Galloping` safe to use standalone, not only behind the
//! hybrid rule's routing.

use super::binary::binary_search_count;
use rmatc_graph::types::VertexId;

/// Number of key windows resolved in lockstep; 64 states fit comfortably in
/// one page of stack and give the memory system plenty of independent loads.
const BATCH: usize = 64;

/// Counts `|keys ∩ haystack|`. Both slices must be sorted and duplicate-free;
/// callers should pass the shorter list as `keys` for the complexity bound to
/// hold, but the result is correct either way.
pub fn galloping_count(keys: &[VertexId], haystack: &[VertexId]) -> u64 {
    let len = haystack.len();
    if len == 0 || keys.is_empty() {
        return 0;
    }
    if keys.len() < BATCH {
        return binary_search_count(keys, haystack);
    }
    let mut count = 0u64;
    // Cursor invariant: every element before `cursor` is < the next key.
    let mut cursor = 0usize;
    // Probe bound, seeded with the expected advance per key and adapted to
    // each key's observed advance thereafter.
    let mut hint = (len / keys.len()).next_power_of_two();
    // (window start, window length, key) per in-flight search.
    let mut states = [(0usize, 0usize, 0 as VertexId); BATCH];
    for batch in keys.chunks(BATCH) {
        if cursor >= len {
            break;
        }
        // Phase 1: gallop each key's bracketing window forward from the
        // cursor. Serial (each window starts where the previous one did), but
        // only ~1-2 probes per key thanks to the adaptive bound.
        let mut n = 0usize;
        for &x in batch {
            let (lo, hi) = gallop_window(haystack, cursor, x, hint);
            hint = (hi - cursor).max(4).next_power_of_two();
            cursor = lo;
            states[n] = (lo, hi - lo, x);
            n += 1;
            if lo >= len {
                break;
            }
        }
        // Phase 2: resolve all windows in lockstep — the loads of one round
        // belong to different keys and are independent.
        let mut pending = true;
        while pending {
            pending = false;
            for s in states[..n].iter_mut() {
                if s.1 > 1 {
                    let half = s.1 / 2;
                    // SAFETY: s.0 + s.1 <= len (gallop_window contract), so
                    // s.0 + half - 1 < len.
                    s.0 += usize::from(unsafe { *haystack.get_unchecked(s.0 + half - 1) } < s.2)
                        * half;
                    s.1 -= half;
                    pending |= s.1 > 1;
                }
            }
        }
        for &(mut idx, size, x) in &states[..n] {
            if size == 1 {
                // SAFETY: idx < len when size == 1 (window within bounds).
                idx += usize::from(unsafe { *haystack.get_unchecked(idx) } < x);
            }
            count += u64::from(idx < len && haystack[idx] == x);
        }
    }
    count
}

/// Range variant for the shared-memory parallel kernel: counts matches of
/// `keys[range]` against the full haystack, with its own cursor.
pub fn galloping_count_range(
    keys: &[VertexId],
    haystack: &[VertexId],
    range: std::ops::Range<usize>,
) -> u64 {
    galloping_count(&keys[range], haystack)
}

/// Brackets the lower bound of `x` in `haystack[start..]`: returns `(lo, hi)`
/// with `lo <= lower_bound(x) <= hi` and `hi <= len`, where every element
/// before `lo` is `< x`. Exponential probing seeded with `hint`, quadrupling —
/// half the dependent probes of doubling, at most two extra lockstep rounds.
///
/// Relies on the caller iterating *strictly increasing* keys: everything
/// before `start` is already known to be below `x`, so no downward probe is
/// needed.
#[inline]
fn gallop_window(haystack: &[VertexId], start: usize, x: VertexId, hint: usize) -> (usize, usize) {
    let len = haystack.len();
    let mut known_ub = start;
    let mut bound = hint.max(1);
    loop {
        let probe = known_ub + bound;
        if probe >= len {
            return (known_ub, len);
        }
        // SAFETY: probe < len was just checked.
        if unsafe { *haystack.get_unchecked(probe) } >= x {
            return (known_ub, probe + 1);
        }
        known_ub = probe + 1;
        bound <<= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::binary::binary_search_count;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_sorted(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn matches_binary_search_on_random_lists() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..300 {
            let lk = rng.gen_range(0..300);
            let lh = rng.gen_range(0..1_000);
            let keys = random_sorted(&mut rng, lk, 2_000);
            let hay = random_sorted(&mut rng, lh, 2_000);
            assert_eq!(
                galloping_count(&keys, &hay),
                binary_search_count(&keys, &hay),
                "keys={keys:?} hay={hay:?}"
            );
        }
    }

    #[test]
    fn batch_boundaries_are_not_special() {
        // Key counts straddling the lockstep batch size.
        let hay: Vec<u32> = (0..10_000).map(|x| x * 2).collect();
        for nkeys in [1usize, 63, 64, 65, 127, 128, 129, 500] {
            let keys: Vec<u32> = (0..nkeys as u32).map(|x| x * 7).collect();
            assert_eq!(
                galloping_count(&keys, &hay),
                binary_search_count(&keys, &hay),
                "nkeys={nkeys}"
            );
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(galloping_count(&[], &[]), 0);
        assert_eq!(galloping_count(&[1], &[]), 0);
        assert_eq!(galloping_count(&[], &[1, 2, 3]), 0);
        assert_eq!(galloping_count(&[5], &[5]), 1);
        assert_eq!(galloping_count(&[5], &[4]), 0);
        assert_eq!(galloping_count(&[5], &[6]), 0);
    }

    #[test]
    fn hub_leaf_skew_finds_every_match() {
        // 1000x skew with matches at the front, middle and back.
        let hay: Vec<u32> = (0..100_000).map(|x| x * 2).collect();
        let keys = vec![0u32, 99_998, 100_001, 150_000, 199_998];
        assert_eq!(galloping_count(&keys, &hay), 4);
    }

    #[test]
    fn dense_keys_degrade_gracefully() {
        // |keys| == |haystack|: the gallop never jumps far but stays correct.
        let a: Vec<u32> = (0..5_000).collect();
        let b: Vec<u32> = (0..5_000).map(|x| x + 2_500).collect();
        assert_eq!(galloping_count(&a, &b), 2_500);
        assert_eq!(galloping_count(&a, &a), 5_000);
    }

    #[test]
    fn keys_beyond_haystack_range_are_skipped() {
        let hay = vec![10u32, 20, 30];
        let keys = vec![1u32, 10, 15, 30, 40, 50];
        assert_eq!(galloping_count(&keys, &hay), 2);
    }

    #[test]
    fn all_equal_pairs_and_extremes() {
        let a: Vec<u32> = (0..2_000).collect();
        assert_eq!(galloping_count(&a, &a), 2_000);
        let edge = vec![0u32, u32::MAX];
        let hay = vec![0u32, 1, u32::MAX - 1, u32::MAX];
        assert_eq!(galloping_count(&edge, &hay), 2);
    }

    #[test]
    fn small_key_sets_short_circuit_correctly() {
        // Under one lockstep batch the kernel must defer to binary search and
        // stay exact on both sides of the boundary.
        let hay: Vec<u32> = (0..50_000).map(|x| x * 3).collect();
        for nkeys in [1usize, 2, 31, 63, 64, 65] {
            let keys: Vec<u32> = (0..nkeys as u32).map(|x| x * 11).collect();
            assert_eq!(
                galloping_count(&keys, &hay),
                binary_search_count(&keys, &hay),
                "nkeys={nkeys}"
            );
        }
    }

    #[test]
    fn range_variant_matches_full_sum() {
        let keys: Vec<u32> = (0..200).map(|x| x * 5).collect();
        let hay: Vec<u32> = (0..1_000).step_by(2).map(|x| x as u32).collect();
        let full = galloping_count(&keys, &hay);
        let split =
            galloping_count_range(&keys, &hay, 0..77) + galloping_count_range(&keys, &hay, 77..200);
        assert_eq!(full, split);
    }
}
