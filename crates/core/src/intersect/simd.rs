//! SIMD / branchless sorted-set-intersection kernel.
//!
//! The scalar SSI of Algorithm 2 compares one element per step behind an
//! unpredictable branch — on the ~6%-density adjacency intersections of R-MAT
//! graphs that branch mispredicts constantly and the kernel runs far below
//! one comparison per cycle. This module replaces it with block comparisons:
//!
//! * On `x86_64`, 4-wide SSE2 (always available) or 8-wide AVX2 (runtime
//!   detected once) all-pairs block comparison — the "V1" kernel of
//!   Schlegel/Lemire-style SIMD intersection: load one block from each list,
//!   compare every pair of lanes with rotations, popcount the match mask, and
//!   advance the block whose maximum is smaller. Every step retires 4 (resp.
//!   8) elements of one list with two branches total.
//! * Everywhere else, a branch-free scalar merge whose index advances are
//!   computed with comparison masks instead of taken branches.
//!
//! Both paths are exact drop-in replacements for [`ssi_count`]: same inputs
//! (sorted, duplicate-free), same count, `O(|A| + |B|)` work.
//!
//! [`ssi_count`]: super::ssi::ssi_count

use rmatc_graph::types::VertexId;

/// Counts `|a ∩ b|` for two sorted, duplicate-free slices using the fastest
/// block-compare kernel available on this CPU.
pub fn simd_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: `avx2_available` just confirmed the CPU supports AVX2.
            return unsafe { avx2::count(a, b) };
        }
        // SSE2 is part of the x86_64 baseline.
        unsafe { sse2::count(a, b) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        branchless_count(a, b)
    }
}

/// Chunked variant for the shared-memory parallel kernel: intersects
/// `long[range]` against the relevant window of `short` (same contract as
/// [`ssi_count_chunk`]).
///
/// [`ssi_count_chunk`]: super::ssi::ssi_count_chunk
pub fn simd_count_chunk(
    short: &[VertexId],
    long: &[VertexId],
    range: std::ops::Range<usize>,
) -> u64 {
    if range.is_empty() || short.is_empty() {
        return 0;
    }
    let chunk = &long[range];
    let lo = short.partition_point(|&x| x < chunk[0]);
    let hi = short.partition_point(|&x| x <= *chunk.last().expect("chunk not empty"));
    simd_count(&short[lo..hi], chunk)
}

#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static AVX2: AtomicU8 = AtomicU8::new(0);
    match AVX2.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let detected = std::arch::is_x86_feature_detected!("avx2");
            AVX2.store(if detected { 1 } else { 2 }, Ordering::Relaxed);
            detected
        }
    }
}

/// Branch-free scalar merge: the cursor advances are data-dependent adds, not
/// taken branches, so the only branch left is the (perfectly predicted) loop
/// bound. Used as the portable fallback and for the SIMD kernels' tails.
pub fn branchless_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let x = a[i];
        let y = b[j];
        count += u64::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    use super::branchless_count;
    use rmatc_graph::types::VertexId;
    use std::arch::x86_64::*;

    /// 4-wide all-pairs block intersection.
    ///
    /// SSE2 is unconditionally available on `x86_64`, so this needs no runtime
    /// check; it is still `unsafe` because of the raw loads.
    pub unsafe fn count(a: &[VertexId], b: &[VertexId]) -> u64 {
        const W: usize = 4;
        let a_blocks = a.len() & !(W - 1);
        let b_blocks = b.len() & !(W - 1);
        let mut i = 0usize;
        let mut j = 0usize;
        let mut count = 0u64;
        if a_blocks > 0 && b_blocks > 0 {
            loop {
                let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
                let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
                // Compare va against every rotation of vb: each a-lane can
                // match at most one b value (lists are duplicate-free), so the
                // OR of the four equality masks has one bit per matching lane.
                let m0 = _mm_cmpeq_epi32(va, vb);
                let m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32::<0b00_11_10_01>(vb));
                let m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32::<0b01_00_11_10>(vb));
                let m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32::<0b10_01_00_11>(vb));
                let m = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
                count += _mm_movemask_ps(_mm_castsi128_ps(m)).count_ones() as u64;
                // Advance the block with the smaller maximum (both on a tie);
                // everything skipped has been compared against all candidates.
                let a_max = *a.get_unchecked(i + W - 1);
                let b_max = *b.get_unchecked(j + W - 1);
                i += W * usize::from(a_max <= b_max);
                j += W * usize::from(b_max <= a_max);
                if i >= a_blocks || j >= b_blocks {
                    break;
                }
            }
        }
        count + branchless_count(&a[i..], &b[j..])
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::branchless_count;
    use rmatc_graph::types::VertexId;
    use std::arch::x86_64::*;

    /// 8-wide all-pairs block intersection (rotations via cross-lane permutes).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count(a: &[VertexId], b: &[VertexId]) -> u64 {
        const W: usize = 8;
        let a_blocks = a.len() & !(W - 1);
        let b_blocks = b.len() & !(W - 1);
        let mut i = 0usize;
        let mut j = 0usize;
        let mut count = 0u64;
        if a_blocks > 0 && b_blocks > 0 {
            let rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
            loop {
                let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
                let mut vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
                let mut m = _mm256_cmpeq_epi32(va, vb);
                // Seven single-lane rotations cover all remaining pairs.
                for _ in 0..W - 1 {
                    vb = _mm256_permutevar8x32_epi32(vb, rot1);
                    m = _mm256_or_si256(m, _mm256_cmpeq_epi32(va, vb));
                }
                count += _mm256_movemask_ps(_mm256_castsi256_ps(m)).count_ones() as u64;
                let a_max = *a.get_unchecked(i + W - 1);
                let b_max = *b.get_unchecked(j + W - 1);
                i += W * usize::from(a_max <= b_max);
                j += W * usize::from(b_max <= a_max);
                if i >= a_blocks || j >= b_blocks {
                    break;
                }
            }
        }
        count + branchless_count(&a[i..], &b[j..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::ssi::ssi_count;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_sorted(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn matches_ssi_on_random_lists() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..200 {
            let la = rng.gen_range(0..400);
            let lb = rng.gen_range(0..400);
            let a = random_sorted(&mut rng, la, 600);
            let b = random_sorted(&mut rng, lb, 600);
            assert_eq!(simd_count(&a, &b), ssi_count(&a, &b), "a={a:?} b={b:?}");
            assert_eq!(branchless_count(&a, &b), ssi_count(&a, &b));
        }
    }

    #[test]
    fn handles_blocks_and_tails() {
        // Lengths straddling every block-width boundary for both SSE and AVX2.
        for la in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
            for lb in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33] {
                let a: Vec<u32> = (0..la as u32).map(|x| x * 2).collect();
                let b: Vec<u32> = (0..lb as u32).map(|x| x * 3).collect();
                assert_eq!(simd_count(&a, &b), ssi_count(&a, &b), "la={la} lb={lb}");
            }
        }
    }

    #[test]
    fn identical_disjoint_and_all_equal() {
        let a: Vec<u32> = (0..1000).collect();
        assert_eq!(simd_count(&a, &a), 1000);
        let evens: Vec<u32> = (0..1000).map(|x| x * 2).collect();
        let odds: Vec<u32> = (0..1000).map(|x| x * 2 + 1).collect();
        assert_eq!(simd_count(&evens, &odds), 0);
        assert_eq!(simd_count(&[], &a), 0);
        assert_eq!(simd_count(&a, &[]), 0);
        assert_eq!(simd_count(&[], &[]), 0);
    }

    /// The dispatcher only exercises one x86 path per machine; test both
    /// explicitly so the SSE2 kernel is covered on AVX2 hosts too.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_and_avx2_paths_agree_with_scalar() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        for _ in 0..100 {
            let la = rng.gen_range(0..300);
            let lb = rng.gen_range(0..300);
            let a = random_sorted(&mut rng, la, 500);
            let b = random_sorted(&mut rng, lb, 500);
            let expected = ssi_count(&a, &b);
            // SAFETY: SSE2 is part of the x86_64 baseline.
            assert_eq!(unsafe { super::sse2::count(&a, &b) }, expected);
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified.
                assert_eq!(unsafe { super::avx2::count(&a, &b) }, expected);
            }
        }
    }

    #[test]
    fn extreme_values_are_not_special() {
        let a = vec![0u32, 1, u32::MAX - 1, u32::MAX];
        let b = vec![0u32, 2, u32::MAX];
        assert_eq!(simd_count(&a, &b), 2);
    }

    #[test]
    fn chunked_sum_matches_full_count() {
        let short: Vec<u32> = (0..300).map(|x| x * 3).collect();
        let long: Vec<u32> = (0..1500).collect();
        let full = simd_count(&short, &long);
        let mut split = 0;
        for start in (0..1500).step_by(131) {
            let end = (start + 131).min(1500);
            split += simd_count_chunk(&short, &long, start..end);
        }
        assert_eq!(full, split);
        assert_eq!(simd_count_chunk(&[], &long, 0..10), 0);
        assert_eq!(simd_count_chunk(&short, &long, 5..5), 0);
    }
}
