//! Remote-access data-reuse analysis.
//!
//! Figures 1 (right), 4 and 5 of the paper characterise *why* caching RMA gets pays
//! off for LCC: under 1D partitioning the number of times a vertex's adjacency list
//! is read remotely equals its remote in-degree, so in power-law graphs a small set
//! of hub vertices receives most of the remote reads. This module computes those
//! quantities directly from a partitioned graph, without running the full algorithm.

use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::stats::{self, SkewPoint};
use rmatc_graph::types::VertexId;

/// Number of remote reads that target each global vertex across all ranks: for every
/// directed edge `(u, v)` whose endpoints live on different ranks, the owner of `u`
/// performs one remote adjacency read of `v`.
pub fn remote_read_counts(pg: &PartitionedGraph) -> Vec<u64> {
    let mut counts = vec![0u64; pg.global_vertex_count()];
    for part in &pg.partitions {
        for (local_idx, _) in part.global_ids.iter().enumerate() {
            for &v in part.neighbours_of_local(local_idx) {
                if pg.partitioner.owner(v) != part.rank {
                    counts[v as usize] += 1;
                }
            }
        }
    }
    counts
}

/// Remote reads issued by a single rank, per target vertex — the Figure 1 (right)
/// view ("remote reads issued by rank 0, two nodes").
pub fn remote_read_counts_from_rank(pg: &PartitionedGraph, rank: usize) -> Vec<u64> {
    let mut counts = vec![0u64; pg.global_vertex_count()];
    let part = &pg.partitions[rank];
    for (local_idx, _) in part.global_ids.iter().enumerate() {
        for &v in part.neighbours_of_local(local_idx) {
            if pg.partitioner.owner(v) != rank {
                counts[v as usize] += 1;
            }
        }
    }
    counts
}

/// One bar of the Figure 1 (right) histogram: `reads` distinct remote regions were
/// each read `repetitions` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RepetitionBucket {
    /// Number of times a region was read.
    pub repetitions: u64,
    /// How many distinct regions were read exactly that many times.
    pub reads: u64,
}

/// Histogram of read repetitions: for each repetition count, the number of distinct
/// vertices whose adjacency list was remotely read exactly that many times.
pub fn repetition_histogram(counts: &[u64]) -> Vec<RepetitionBucket> {
    let mut map = std::collections::BTreeMap::new();
    for &c in counts {
        if c > 0 {
            *map.entry(c).or_insert(0u64) += 1;
        }
    }
    map.into_iter()
        .map(|(repetitions, reads)| RepetitionBucket { repetitions, reads })
        .collect()
}

/// Fraction of remote reads that are *repeated* (would hit an infinite cache):
/// `1 − distinct regions / total reads`.
pub fn reuse_fraction(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    let distinct = counts.iter().filter(|&&c| c > 0).count() as u64;
    if total == 0 {
        0.0
    } else {
        1.0 - distinct as f64 / total as f64
    }
}

/// The Figure 4 curve for a partitioned graph: cumulative fraction of remote reads
/// against the fraction of (most-read) vertices.
pub fn contribution_curve(pg: &PartitionedGraph) -> Vec<SkewPoint> {
    stats::top_degree_contribution(&remote_read_counts(pg))
}

/// The headline number highlighted in Figure 4: fraction of remote reads that target
/// the top `top` fraction (0.1 in the paper) of the most-read vertices.
pub fn top_fraction_share(pg: &PartitionedGraph, top: f64) -> f64 {
    stats::fraction_of_reads_to_top(&remote_read_counts(pg), top)
}

/// One point of Figure 5: a remotely accessed vertex's degree, how many times it is
/// read, and the size its adjacency list occupies as a `C_adj` entry.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VertexReuse {
    /// Global vertex id.
    pub vertex: VertexId,
    /// Out-degree of the vertex (also the length of the cached entry).
    pub degree: u32,
    /// Number of remote reads targeting it.
    pub remote_reads: u64,
    /// Size of its adjacency list in bytes (the `C_adj` entry size).
    pub entry_bytes: u64,
}

/// Per-vertex reuse records for all vertices that are remotely read at least once,
/// sorted by descending read count (Figure 5's scatter data).
pub fn vertex_reuse(pg: &PartitionedGraph) -> Vec<VertexReuse> {
    let counts = remote_read_counts(pg);
    let mut out = Vec::new();
    for (v, &reads) in counts.iter().enumerate() {
        if reads == 0 {
            continue;
        }
        let owner = pg.partitioner.owner(v as VertexId);
        let local = pg.partitioner.local_index(v as VertexId);
        let degree = pg.partitions[owner].csr.degree(local as u32);
        out.push(VertexReuse {
            vertex: v as VertexId,
            degree,
            remote_reads: reads,
            entry_bytes: degree as u64 * std::mem::size_of::<VertexId>() as u64,
        });
    }
    out.sort_by_key(|r| std::cmp::Reverse(r.remote_reads));
    out
}

/// Pearson correlation between vertex degree and remote-read count — Observation 3.1
/// of the paper ("the number of accesses to a vertex correlates with its degree").
pub fn degree_read_correlation(records: &[VertexReuse]) -> f64 {
    if records.len() < 2 {
        return 0.0;
    }
    let n = records.len() as f64;
    let mean_d = records.iter().map(|r| r.degree as f64).sum::<f64>() / n;
    let mean_r = records.iter().map(|r| r.remote_reads as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_d = 0.0;
    let mut var_r = 0.0;
    for r in records {
        let dd = r.degree as f64 - mean_d;
        let dr = r.remote_reads as f64 - mean_r;
        cov += dd * dr;
        var_d += dd * dd;
        var_r += dr * dr;
    }
    if var_d == 0.0 || var_r == 0.0 {
        return 0.0;
    }
    cov / (var_d.sqrt() * var_r.sqrt())
}

/// Expected remote reads of a vertex with remote in-degree `deg_in` under `p` ranks
/// with random vertex placement, per the paper's estimate `(deg⁻(v) − p) / p`
/// (clamped at zero).
pub fn expected_remote_reads(deg_in: u32, p: usize) -> f64 {
    ((deg_in as f64 - p as f64) / p as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_graph::datasets::{Dataset, DatasetScale};
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator, UniformRandom};
    use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};

    fn partitioned(ds: Dataset, ranks: usize) -> PartitionedGraph {
        let g = ds.generate(DatasetScale::Tiny, 1);
        PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap()
    }

    #[test]
    fn counts_equal_remote_in_degree() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(2).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 4).unwrap();
        let counts = remote_read_counts(&pg);
        // Cross-check one vertex by brute force.
        let v = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap() as u32;
        let mut expected = 0u64;
        for (u, w) in g.edges() {
            if w == v && pg.partitioner.owner(u) != pg.partitioner.owner(v) {
                expected += 1;
            }
        }
        assert_eq!(counts[v as usize], expected);
        // Totals match the sum of per-rank views.
        let per_rank_total: u64 = (0..4)
            .map(|r| remote_read_counts_from_rank(&pg, r).iter().sum::<u64>())
            .sum();
        assert_eq!(counts.iter().sum::<u64>(), per_rank_total);
    }

    #[test]
    fn single_rank_has_no_remote_reads() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 1).unwrap();
        assert!(remote_read_counts(&pg).iter().all(|&c| c == 0));
        assert_eq!(reuse_fraction(&remote_read_counts(&pg)), 0.0);
    }

    #[test]
    fn histogram_counts_match_totals() {
        let counts = vec![0, 1, 1, 3, 3, 3, 7];
        let hist = repetition_histogram(&counts);
        assert_eq!(
            hist,
            vec![
                RepetitionBucket {
                    repetitions: 1,
                    reads: 2
                },
                RepetitionBucket {
                    repetitions: 3,
                    reads: 3
                },
                RepetitionBucket {
                    repetitions: 7,
                    reads: 1
                },
            ]
        );
        let total_reads: u64 = hist.iter().map(|b| b.repetitions * b.reads).sum();
        assert_eq!(total_reads, counts.iter().sum::<u64>());
    }

    #[test]
    fn facebook_like_graph_shows_reuse_on_two_nodes() {
        // Figure 1 (right): the Facebook-circles graph on two nodes shows substantial
        // repeated remote reads.
        let pg = partitioned(Dataset::FacebookCircles, 2);
        let counts = remote_read_counts_from_rank(&pg, 0);
        let frac = reuse_fraction(&counts);
        assert!(frac > 0.3, "expected significant data reuse, got {frac}");
        assert!(repetition_histogram(&counts)
            .iter()
            .any(|b| b.repetitions >= 4));
    }

    #[test]
    fn skewed_graphs_concentrate_reads_on_top_vertices() {
        // Figure 4: power-law graphs send most remote reads to the top 10% of
        // vertices, uniform graphs do not.
        let skewed = partitioned(Dataset::Orkut, 8);
        let uniform_graph = UniformRandom::undirected(2_000, 2_000 * 16)
            .generate_cleaned(1)
            .into_csr();
        let uniform =
            PartitionedGraph::from_global(&uniform_graph, PartitionScheme::Block1D, 8).unwrap();
        let share_skewed = top_fraction_share(&skewed, 0.1);
        let share_uniform = top_fraction_share(&uniform, 0.1);
        assert!(
            share_skewed > share_uniform + 0.1,
            "skewed {share_skewed} must exceed uniform {share_uniform}"
        );
        assert!(
            share_uniform < 0.4,
            "uniform graphs have little concentration"
        );
    }

    #[test]
    fn contribution_curve_is_monotone() {
        let pg = partitioned(Dataset::LiveJournal, 4);
        let curve = contribution_curve(&pg);
        assert!(!curve.is_empty());
        assert!(curve
            .windows(2)
            .all(|w| w[0].read_fraction <= w[1].read_fraction + 1e-12));
        assert!((curve.last().unwrap().read_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_records_correlate_degree_and_reads() {
        // Observation 3.1 / Figure 5: entry reuse correlates with entry size (degree).
        let pg = partitioned(Dataset::FacebookCircles, 2);
        let records = vertex_reuse(&pg);
        assert!(!records.is_empty());
        for r in &records {
            assert_eq!(r.entry_bytes, r.degree as u64 * 4);
        }
        let corr = degree_read_correlation(&records);
        assert!(
            corr > 0.5,
            "degree and remote reads must correlate strongly, got {corr}"
        );
    }

    #[test]
    fn expected_remote_reads_formula() {
        assert_eq!(expected_remote_reads(100, 4), 24.0);
        assert_eq!(expected_remote_reads(2, 4), 0.0);
    }

    #[test]
    fn degenerate_correlation_inputs() {
        assert_eq!(degree_read_correlation(&[]), 0.0);
        let one = vec![VertexReuse {
            vertex: 0,
            degree: 5,
            remote_reads: 2,
            entry_bytes: 20,
        }];
        assert_eq!(degree_read_correlation(&one), 0.0);
    }
}
