//! The overlapped worker: intra-rank threads and a software pipeline over the
//! two-get protocol (the paper's shared-memory axis, Figure 6, composed with
//! the communication/compute overlap its double-buffering models).
//!
//! `run_worker_overlapped` is the drop-in counterpart of
//! [`super::worker::run_worker`], selected by [`DistConfig::overlapped`]. It
//! differs along two orthogonal axes:
//!
//! * **Pipeline depth** — instead of completing every remote adjacency get
//!   before touching the next edge, each worker thread keeps up to
//!   [`DistConfig::effective_pipeline_depth`] gets in flight in a FIFO:
//!   the get of edge *i+D* is issued while edge *i* completes, so the modeled
//!   (and, with [`rmatc_rma::NetworkModel::with_injection`], real) transfer
//!   latency hides behind the issue-side compute. Offsets reads stay
//!   synchronous — they are two-element reads whose result gates the
//!   adjacency get, exactly the dependency the two-get protocol imposes.
//! * **Intra-rank threads** — the rank's vertex block is split into
//!   [`DistConfig::effective_intra_threads`] contiguous chunks, each run by a
//!   task on the process-wide work-stealing pool with its *own*
//!   [`Endpoint`] (own statistics, own deterministic fault stream), all
//!   sharing one `SharedReader` whose caches are the lock-sharded
//!   [`rmatc_clampi::ShardedCachedWindow`] — concurrent misses on different
//!   shards proceed in parallel, same-key misses coalesce.
//!
//! # Equivalence to the sequential worker
//!
//! The differential layer in `tests/equivalence.rs` holds this path to the
//! sequential worker's results. The key design decisions that make the strong
//! tier (one thread, any depth, fault-free: bit-identical scores, cache
//! statistics *and* rank statistics) possible:
//!
//! * The simulator materializes a get's data at issue time
//!   ([`Endpoint::get_map`] runs the transfer closure immediately); only the
//!   cost charge is deferred to the wait. A fault-free miss therefore
//!   computes its fused intersection and admits the landed buffer *at issue
//!   time* — the cache performs the same operations in the same order as the
//!   sequential worker — while the deferred FIFO waits charge completion
//!   costs in issue order, preserving the exact f64 accumulation sequence.
//! * Under fault injection the issue-time buffer may be corrupted, so the
//!   pipelined miss path never admits (or trusts a count from) unverified
//!   data: the wait verifies the checksum, heals failures by reissuing
//!   ([`Endpoint::wait_with_reissue`]), recomputes the count from the clean
//!   buffer, and only then admits it. Faulted runs are compared on scores
//!   against the fault-free baseline, not on statistics.
//! * On an unrecoverable error the thread abandons its in-flight gets
//!   ([`Endpoint::abandon_outstanding`]), closes its epoch and surfaces the
//!   error; the lowest thread index wins, keeping the surfaced error
//!   deterministic (the same rule `run_ranks` applies across ranks).

use super::config::{DistConfig, ResolvedCaches, ScoreMode};
use super::reader::{compressed_transfer_count_closing, transfer_count_closing};
use super::windows::GraphWindows;
use super::worker::WorkerOutput;
use crate::intersect::{CostModel, ParallelIntersector};
use crate::local::{compressed_count_closing_at, count_closing_at};
use rayon::prelude::*;
use rmatc_clampi::{CacheProbe, CacheStats, RowRef, ShardedCachedWindow};
use rmatc_graph::compressed::decoded_len;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::{Direction, VertexId};
use rmatc_graph::GraphStorage;
use rmatc_rma::{Endpoint, PendingGet, RankStats, RmaError, ThreadTimer};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

/// The concurrent counterpart of [`super::reader::RemoteReader`]: one
/// instance per rank, shared by reference across that rank's worker threads
/// (each thread brings its own [`Endpoint`]). Caches are lock-sharded; with
/// one thread the single shard makes every decision identical to the
/// sequential reader's.
pub(crate) struct SharedReader {
    offsets_plain: rmatc_rma::Window<u64>,
    adj_plain: rmatc_rma::Window<VertexId>,
    offsets_cache: Option<ShardedCachedWindow<u64>>,
    adj_cache: Option<ShardedCachedWindow<VertexId>>,
    score_mode: ScoreMode,
    /// How the adjacency window's payload is encoded (taken from the windows,
    /// which the reader must match). Under [`GraphStorage::Compressed`] every
    /// admitted miss records logical vs stored bytes on the cache.
    storage: GraphStorage,
    /// Cost model driving the fused decompress+intersect kernel choice —
    /// the same model the plain path's intersector carries.
    model: CostModel,
}

/// A remote adjacency get in flight: everything needed to finish the read at
/// completion time — heal, recompute when the issue-time value is untrusted,
/// and admit into the cache when admission was deferred.
pub(crate) struct Deferred<R> {
    pending: PendingGet<VertexId>,
    target: usize,
    start: usize,
    len: usize,
    score: f64,
    /// Admit the clean buffer at completion (faulted cached miss: inserting
    /// at issue time would stamp a checksum over possibly-corrupt data and
    /// the cache would then serve it as a verified hit).
    admit: bool,
    /// The fused issue-time result, present exactly when the transfer is
    /// trusted (fault-free). `None` means recompute from the clean buffer.
    value: Option<R>,
}

/// Outcome of starting a remote adjacency read.
pub(crate) enum Started<R> {
    /// Resolved at issue time (empty row, local row, or cache hit): the
    /// result computed in place over the stored row.
    Immediate(R),
    /// A get is in flight; finish with [`SharedReader::complete`].
    Deferred(Deferred<R>),
}

impl SharedReader {
    /// Builds the shared reader for one rank, sharding each enabled cache
    /// `shards` ways (one shard per expected worker thread).
    pub(crate) fn new(
        windows: &GraphWindows,
        caches: &ResolvedCaches,
        config: &DistConfig,
        shards: usize,
    ) -> Self {
        Self {
            offsets_plain: windows.offsets.clone(),
            adj_plain: windows.adjacencies.clone(),
            offsets_cache: caches
                .offsets
                .map(|cfg| ShardedCachedWindow::new(windows.offsets.clone(), cfg, shards)),
            adj_cache: caches
                .adjacencies
                .map(|cfg| ShardedCachedWindow::new(windows.adjacencies.clone(), cfg, shards)),
            score_mode: config.score_mode,
            storage: windows.storage,
            model: config.cost_model,
        }
    }

    /// First get of the protocol, synchronous as in the sequential reader:
    /// the `(start, end)` offsets pair of the row of `local_idx` on `target`.
    fn read_offsets(
        &self,
        ep: &mut Endpoint,
        target: usize,
        local_idx: usize,
    ) -> Result<(usize, usize), RmaError> {
        let row = match &self.offsets_cache {
            Some(cache) => cache.get_scored(ep, target, local_idx, 2, 0.0)?,
            None if target == ep.rank() => {
                RowRef::Window(ep.local_read(&self.offsets_plain, local_idx, 2))
            }
            None => {
                RowRef::Fetched(ep.get_with_retry(&self.offsets_plain, target, local_idx, 2)?)
            }
        };
        Ok((row[0] as usize, row[1] as usize))
    }

    /// The application-defined eviction score of an adjacency row (the degree
    /// of the fetched vertex), as in the sequential reader.
    fn score_for(&self, len: usize) -> f64 {
        match self.score_mode {
            ScoreMode::Lru => 0.0,
            ScoreMode::DegreeCentrality => len as f64,
        }
    }

    /// Starts a remote adjacency read for the row of `local_idx` on `target`:
    /// reads the offsets synchronously, then either resolves in place
    /// (`on_row` over an empty, local or cached row) or issues the adjacency
    /// get nonblockingly and returns it as [`Started::Deferred`].
    ///
    /// On a fault-free miss the transfer is fused: `fused` lands the source
    /// region in a shared buffer and computes the caller's result in the same
    /// pass, and the buffer is admitted immediately — keeping cache state in
    /// the exact sequential order. Under fault injection both the value and
    /// the admission are deferred to the verified completion.
    pub(crate) fn start_remote<R>(
        &self,
        ep: &mut Endpoint,
        target: usize,
        local_idx: usize,
        on_row: impl FnOnce(&[VertexId]) -> R,
        fused: impl FnOnce(&[VertexId]) -> (Arc<[VertexId]>, R),
    ) -> Result<Started<R>, RmaError> {
        let (start, end) = self.read_offsets(ep, target, local_idx)?;
        let len = end - start;
        if len == 0 {
            return Ok(Started::Immediate(on_row(&[])));
        }
        if target == ep.rank() {
            let row = ep.local_read(&self.adj_plain, start, len);
            return Ok(Started::Immediate(on_row(row)));
        }
        let score = self.score_for(len);
        let deferred = match &self.adj_cache {
            Some(cache) => match cache.probe(ep, target, start, len) {
                CacheProbe::Hit(row) => {
                    return Ok(Started::Immediate(on_row(&row)));
                }
                CacheProbe::Bypass => Deferred {
                    pending: ep.issue_with_retry(&self.adj_plain, target, start, len)?,
                    target,
                    start,
                    len,
                    score,
                    admit: false,
                    value: None,
                },
                CacheProbe::Miss if ep.faults_enabled() => Deferred {
                    pending: ep.issue_with_retry(&self.adj_plain, target, start, len)?,
                    target,
                    start,
                    len,
                    score,
                    admit: true,
                    value: None,
                },
                CacheProbe::Miss => {
                    // Fault-free miss: fused transfer at issue time, admitted
                    // immediately — the single sequential-order cache insert.
                    let mut landed: Option<Arc<[VertexId]>> = None;
                    let (pending, value) =
                        ep.get_map(&self.adj_plain, target, start, len, |src| {
                            let (arc, value) = fused(src);
                            landed = Some(Arc::clone(&arc));
                            (arc, value)
                        })?;
                    let arc = landed.expect("transfer closure runs at issue time");
                    let sizes = (self.storage == GraphStorage::Compressed)
                        .then(|| (decoded_len(&arc) as u64 * 4, arc.len() as u64 * 4));
                    cache.admit(ep, target, start, len, arc, score);
                    if let Some((logical, stored)) = sizes {
                        // Same per-miss record the sequential reader makes,
                        // at the same point in cache-operation order.
                        cache.record_compression(target, start, len, logical, stored);
                    }
                    Deferred {
                        pending,
                        target,
                        start,
                        len,
                        score,
                        admit: false,
                        value: Some(value),
                    }
                }
            },
            None if ep.faults_enabled() => Deferred {
                pending: ep.issue_with_retry(&self.adj_plain, target, start, len)?,
                target,
                start,
                len,
                score,
                admit: false,
                value: None,
            },
            None => {
                let (pending, value) = ep.get_map(&self.adj_plain, target, start, len, fused)?;
                Deferred {
                    pending,
                    target,
                    start,
                    len,
                    score,
                    admit: false,
                    value: Some(value),
                }
            }
        };
        Ok(Started::Deferred(deferred))
    }

    /// Completes a deferred read: waits (healing by reissue), recomputes the
    /// result from the verified-clean buffer when the issue-time value was
    /// untrusted, and performs the deferred cache admission.
    pub(crate) fn complete<R>(
        &self,
        ep: &mut Endpoint,
        deferred: Deferred<R>,
        recompute: impl FnOnce(&[VertexId]) -> R,
    ) -> Result<R, RmaError> {
        let Deferred {
            pending,
            target,
            start,
            len,
            score,
            admit,
            value,
        } = deferred;
        let clean = ep.wait_with_reissue(pending, &self.adj_plain, target, start, len)?;
        let value = match value {
            Some(v) => v,
            None => recompute(&clean),
        };
        if admit {
            if let Some(cache) = &self.adj_cache {
                if self.storage == GraphStorage::Compressed {
                    cache.record_compression(
                        target,
                        start,
                        len,
                        decoded_len(&clean) as u64 * 4,
                        clean.len() as u64 * 4,
                    );
                }
                cache.admit(ep, target, start, len, clean, score);
            }
        }
        Ok(value)
    }

    /// The storage mode of the windows this reader serves.
    pub(crate) fn storage(&self) -> GraphStorage {
        self.storage
    }

    /// The cost model driving the compressed kernels.
    pub(crate) fn model(&self) -> &CostModel {
        &self.model
    }

    /// Statistics of the offsets cache, if enabled (merged across shards).
    pub(crate) fn offsets_cache_stats(&self) -> Option<CacheStats> {
        self.offsets_cache.as_ref().map(|c| c.stats())
    }

    /// Statistics of the adjacency cache, if enabled (merged across shards).
    pub(crate) fn adjacency_cache_stats(&self) -> Option<CacheStats> {
        self.adj_cache.as_ref().map(|c| c.stats())
    }
}

/// Splits `n` items into `workers` contiguous chunks; returns the chunk size.
pub(crate) fn chunk_size(n: usize, workers: usize) -> usize {
    n.div_ceil(workers.max(1)).max(1)
}

/// Clamps the configured thread count to the rank's vertex count (an idle
/// thread would only skew fault streams), with a floor of one.
pub(crate) fn worker_count(config: &DistConfig, n_local: usize) -> usize {
    config.effective_intra_threads().min(n_local).max(1)
}

/// One LCC adjacency get in flight: the [`Deferred`] read plus the edge
/// context needed to recompute and accumulate at completion.
struct Slot<'a> {
    deferred: Deferred<u64>,
    adj_u: &'a [VertexId],
    v: VertexId,
    neighbour_idx: usize,
    /// Index into the thread's local triangle accumulator.
    out: usize,
}

/// What one worker thread produced.
struct ThreadOut {
    range: Range<usize>,
    triangles: Vec<u64>,
    rma: RankStats,
    compute_ns: u64,
    edges_processed: u64,
    remote_edges: u64,
}

/// Runs one rank of the distributed LCC computation with the overlapped
/// worker (pipelined gets, optional intra-rank threads). Selected by
/// [`super::worker::run_worker`] when [`DistConfig::overlapped`] holds;
/// output and error semantics are identical to the sequential worker.
pub(crate) fn run_worker_overlapped(
    rank: usize,
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    config: &DistConfig,
) -> Result<WorkerOutput, RmaError> {
    let part = &pg.partitions[rank];
    let caches = match &config.cache {
        Some(spec) => spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64),
        None => ResolvedCaches {
            offsets: None,
            adjacencies: None,
        },
    };
    let n_local = part.local_vertex_count();
    let workers = worker_count(config, n_local);
    let reader = SharedReader::new(windows, &caches, config, workers);
    let intersector =
        ParallelIntersector::new(config.method, 1, usize::MAX).with_cost_model(config.cost_model);
    let chunk = chunk_size(n_local, workers);

    let outs: Vec<Result<ThreadOut, RmaError>> = (0..workers)
        .into_par_iter()
        .map(|t| {
            let lo = (t * chunk).min(n_local);
            let hi = ((t + 1) * chunk).min(n_local);
            run_thread(rank, lo..hi, pg, &reader, config, &intersector)
        })
        .collect();
    // Lowest failing thread wins: index order, not completion order, keeps
    // the surfaced error deterministic (the rule `run_ranks` applies too).
    let outs = outs.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut local_triangles = vec![0u64; n_local];
    let mut rma: Option<RankStats> = None;
    let mut compute_ns = 0u64;
    let mut edges_processed = 0u64;
    let mut remote_edges = 0u64;
    for out in outs {
        local_triangles[out.range.clone()].copy_from_slice(&out.triangles);
        match &mut rma {
            Some(merged) => merged.merge(&out.rma),
            None => rma = Some(out.rma),
        }
        // The rank's threads run concurrently: its compute time is the
        // slowest thread, not the sum.
        compute_ns = compute_ns.max(out.compute_ns);
        edges_processed += out.edges_processed;
        remote_edges += out.remote_edges;
    }
    Ok(WorkerOutput {
        rank,
        local_triangles,
        offsets_cache: reader.offsets_cache_stats(),
        adjacency_cache: reader.adjacency_cache_stats(),
        rma: rma.unwrap_or_else(|| RankStats::new(config.ranks)),
        compute_ns,
        edges_processed,
        remote_edges,
    })
}

/// One worker thread: walks its contiguous vertex chunk with a depth-bounded
/// FIFO of in-flight adjacency gets.
fn run_thread(
    rank: usize,
    range: Range<usize>,
    pg: &PartitionedGraph,
    reader: &SharedReader,
    config: &DistConfig,
    intersector: &ParallelIntersector,
) -> Result<ThreadOut, RmaError> {
    let mut ep = Endpoint::new(rank, config.ranks, config.network).with_retry(config.retry);
    if let Some(plan) = config.faults {
        // Same per-rank seed on every thread: each thread owns a
        // deterministic event stream independent of the thread count's
        // interleaving (streams advance per event, per endpoint).
        ep = ep.with_faults(plan.injector(rank));
    }
    let mut triangles = vec![0u64; range.len()];
    let mut edges_processed = 0u64;
    let mut remote_edges = 0u64;
    let mut fifo: VecDeque<Slot<'_>> = VecDeque::with_capacity(config.effective_pipeline_depth());
    ep.lock_all();
    let timer = ThreadTimer::start();
    let outcome = thread_loop(
        rank,
        range.clone(),
        pg,
        reader,
        config,
        intersector,
        &mut ep,
        &mut fifo,
        &mut triangles,
        &mut edges_processed,
        &mut remote_edges,
        &timer,
    );
    match outcome {
        Ok(()) => {
            let compute_ns = timer.elapsed_ns();
            ep.unlock_all();
            Ok(ThreadOut {
                range,
                triangles,
                rma: ep.into_stats(),
                compute_ns,
                edges_processed,
                remote_edges,
            })
        }
        Err(e) => {
            // Drop the in-flight slots and charge their cost as a final
            // flush, so the epoch closes cleanly instead of hanging on (or
            // asserting about) abandoned gets.
            fifo.clear();
            ep.abandon_outstanding();
            ep.unlock_all();
            Err(e)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn thread_loop<'a>(
    rank: usize,
    range: Range<usize>,
    pg: &'a PartitionedGraph,
    reader: &SharedReader,
    config: &DistConfig,
    intersector: &ParallelIntersector,
    ep: &mut Endpoint,
    fifo: &mut VecDeque<Slot<'a>>,
    triangles: &mut [u64],
    edges_processed: &mut u64,
    remote_edges: &mut u64,
    timer: &ThreadTimer,
) -> Result<(), RmaError> {
    let part = &pg.partitions[rank];
    let direction = pg.direction;
    let depth = config.effective_pipeline_depth();
    let model = &config.cost_model;
    let compressed = reader.storage == GraphStorage::Compressed;
    for local_idx in range.clone() {
        let out = local_idx - range.start;
        let adj_u = part.neighbours_of_local(local_idx);
        for (k, &v) in adj_u.iter().enumerate() {
            *edges_processed += 1;
            let owner = pg.partitioner.owner(v);
            if owner == rank {
                let v_local = pg.partitioner.local_index(v);
                let adj_v = part.neighbours_of_local(v_local);
                triangles[out] += count_closing_at(direction, adj_u, adj_v, v, k, intersector);
                continue;
            }
            *remote_edges += 1;
            let v_local = pg.partitioner.local_index(v);
            let compute_start = timer.elapsed_ns();
            // The remote row arrives as stored: raw ids under plain storage,
            // compressed words under compressed storage — pick the matching
            // pair of in-place / fused-transfer kernels.
            let started = if compressed {
                reader.start_remote(
                    ep,
                    owner,
                    v_local,
                    |row| compressed_count_closing_at(direction, adj_u, row, v, k, model),
                    |src| compressed_transfer_count_closing(direction, adj_u, v, k, model, src),
                )?
            } else {
                reader.start_remote(
                    ep,
                    owner,
                    v_local,
                    |row| count_closing_at(direction, adj_u, row, v, k, intersector),
                    |src| transfer_count_closing(direction, adj_u, v, k, intersector, src),
                )?
            };
            match started {
                Started::Immediate(value) => triangles[out] += value,
                Started::Deferred(deferred) => {
                    if fifo.len() >= depth {
                        let slot = fifo.pop_front().expect("fifo is non-empty at depth");
                        complete_slot(ep, reader, slot, triangles, intersector, direction)?;
                    }
                    fifo.push_back(Slot {
                        deferred,
                        adj_u,
                        v,
                        neighbour_idx: k,
                        out,
                    });
                }
            }
            if config.double_buffering {
                // As in the sequential worker: bank this round's issue-side
                // compute as overlap credit for upcoming completions.
                ep.note_compute_ns((timer.elapsed_ns() - compute_start) as f64);
            }
        }
    }
    // Drain the tail in issue order.
    while let Some(slot) = fifo.pop_front() {
        complete_slot(ep, reader, slot, triangles, intersector, direction)?;
    }
    Ok(())
}

fn complete_slot(
    ep: &mut Endpoint,
    reader: &SharedReader,
    slot: Slot<'_>,
    triangles: &mut [u64],
    intersector: &ParallelIntersector,
    direction: Direction,
) -> Result<(), RmaError> {
    let Slot {
        deferred,
        adj_u,
        v,
        neighbour_idx,
        out,
    } = slot;
    let count = if reader.storage == GraphStorage::Compressed {
        let model = &reader.model;
        reader.complete(ep, deferred, |row| {
            compressed_count_closing_at(direction, adj_u, row, v, neighbour_idx, model)
        })?
    } else {
        reader.complete(ep, deferred, |row| {
            count_closing_at(direction, adj_u, row, v, neighbour_idx, intersector)
        })?
    };
    triangles[out] += count;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::config::CacheSpec;
    use crate::distributed::worker::run_worker;
    use crate::intersect::{CostModel, IntersectMethod};
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::PartitionScheme;
    use rmatc_rma::NetworkModel;

    /// Integer counters must match the sequential worker exactly; the f64
    /// time accumulators see the same charges but in a different interleaving
    /// (offsets-read charges land between deferred adjacency completions), so
    /// non-associative addition leaves ulp-level drift — compared with a tight
    /// relative tolerance instead.
    fn assert_stats_equivalent(a: &RankStats, b: &RankStats) {
        let mut ai = a.clone();
        let mut bi = b.clone();
        for s in [&mut ai, &mut bi] {
            s.comm_time_ns = 0.0;
            s.local_time_ns = 0.0;
            s.overlapped_ns = 0.0;
            s.backoff_ns = 0.0;
        }
        assert_eq!(ai, bi, "integer statistics must match exactly");
        for (x, y, what) in [
            (a.comm_time_ns, b.comm_time_ns, "comm_time_ns"),
            (a.local_time_ns, b.local_time_ns, "local_time_ns"),
            (a.overlapped_ns, b.overlapped_ns, "overlapped_ns"),
            (a.backoff_ns, b.backoff_ns, "backoff_ns"),
        ] {
            assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
                "{what}: {x} vs {y}"
            );
        }
    }

    fn setup(ranks: usize) -> (PartitionedGraph, GraphWindows, DistConfig) {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(5).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
        let windows = GraphWindows::build(&pg);
        let config = DistConfig {
            ranks,
            scheme: PartitionScheme::Block1D,
            method: IntersectMethod::Hybrid,
            cost_model: CostModel::Analytic,
            network: NetworkModel::aries(),
            double_buffering: false,
            cache: None,
            score_mode: crate::distributed::config::ScoreMode::Lru,
            retry: rmatc_rma::RetryPolicy::default(),
            faults: None,
            pipeline_depth: 1,
            intra_threads: 1,
            storage: GraphStorage::Plain,
        };
        (pg, windows, config)
    }

    #[test]
    fn pipelined_single_thread_is_bit_identical_to_sequential() {
        let (pg, windows, mut config) = setup(2);
        let baseline = run_worker(0, &pg, &windows, &config).unwrap();
        for depth in [2usize, 4, 16] {
            config.pipeline_depth = depth;
            assert!(config.overlapped());
            let piped = run_worker(0, &pg, &windows, &config).unwrap();
            assert_eq!(piped.local_triangles, baseline.local_triangles, "d={depth}");
            assert_stats_equivalent(&piped.rma, &baseline.rma);
            assert_eq!(piped.edges_processed, baseline.edges_processed);
            assert_eq!(piped.remote_edges, baseline.remote_edges);
        }
    }

    #[test]
    fn pipelined_cached_single_thread_matches_cache_stats_exactly() {
        let (pg, windows, mut config) = setup(2);
        config.cache = Some(CacheSpec::paper(1 << 20));
        config.score_mode = crate::distributed::config::ScoreMode::DegreeCentrality;
        let baseline = run_worker(0, &pg, &windows, &config).unwrap();
        config.pipeline_depth = 8;
        let piped = run_worker(0, &pg, &windows, &config).unwrap();
        assert_eq!(piped.local_triangles, baseline.local_triangles);
        assert_eq!(piped.adjacency_cache, baseline.adjacency_cache);
        assert_eq!(piped.offsets_cache, baseline.offsets_cache);
        assert_stats_equivalent(&piped.rma, &baseline.rma);
    }

    #[test]
    fn compressed_pipelined_cached_matches_sequential_exactly() {
        // The strong equivalence tier must survive compressed storage: one
        // thread, any depth, fault-free — bit-identical triangles, cache
        // statistics (including the logical/stored byte counters) and rank
        // statistics against the sequential compressed worker.
        let (pg, _plain, mut config) = setup(2);
        config.storage = GraphStorage::Compressed;
        config.cache = Some(CacheSpec::paper(1 << 20));
        config.score_mode = crate::distributed::config::ScoreMode::DegreeCentrality;
        let windows = GraphWindows::build_with(&pg, GraphStorage::Compressed);
        let baseline = run_worker(0, &pg, &windows, &config).unwrap();
        for depth in [2usize, 8] {
            config.pipeline_depth = depth;
            let piped = run_worker(0, &pg, &windows, &config).unwrap();
            assert_eq!(piped.local_triangles, baseline.local_triangles, "d={depth}");
            assert_eq!(piped.adjacency_cache, baseline.adjacency_cache, "d={depth}");
            assert_eq!(piped.offsets_cache, baseline.offsets_cache, "d={depth}");
            assert_stats_equivalent(&piped.rma, &baseline.rma);
        }
        let adj = baseline.adjacency_cache.expect("adjacency cache enabled");
        assert!(
            adj.logical_bytes > adj.stored_bytes && adj.stored_bytes > 0,
            "compressed misses must record a compression win"
        );
    }

    #[test]
    fn threaded_workers_match_scores_and_get_totals() {
        let (pg, windows, mut config) = setup(2);
        let baseline = run_worker(0, &pg, &windows, &config).unwrap();
        for threads in [2usize, 4] {
            config.intra_threads = threads;
            config.pipeline_depth = 4;
            let out = run_worker(0, &pg, &windows, &config).unwrap();
            assert_eq!(out.local_triangles, baseline.local_triangles, "t={threads}");
            // Non-cached: gets and bytes are per-edge deterministic however
            // the threads interleave.
            assert_eq!(out.rma.gets, baseline.rma.gets, "t={threads}");
            assert_eq!(out.rma.bytes, baseline.rma.bytes, "t={threads}");
            assert_eq!(out.edges_processed, baseline.edges_processed);
        }
    }

    #[test]
    fn chunking_covers_every_vertex_exactly_once() {
        for (n, workers) in [(0usize, 4usize), (1, 4), (7, 2), (8, 2), (9, 2), (5, 8)] {
            let w = worker_count(
                &{
                    let (_, _, mut c) = setup(2);
                    c.intra_threads = workers;
                    c
                },
                n,
            );
            let chunk = chunk_size(n, w);
            let mut covered = vec![false; n];
            for t in 0..w {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                for slot in covered[lo..hi].iter_mut() {
                    assert!(!*slot, "n={n} workers={workers}: double cover");
                    *slot = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "n={n} workers={workers}");
        }
    }
}
