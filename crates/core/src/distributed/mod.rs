//! Fully asynchronous distributed-memory TC/LCC (Algorithm 3 of the paper).
//!
//! The pipeline is:
//!
//! 1. The input CSR graph is 1D-partitioned: each rank owns a contiguous block of
//!    vertices and the CSR rows of exactly those vertices ([`rmatc_graph::partition`]).
//! 2. Every rank exposes its `offsets` and `adjacencies` arrays in two RMA windows
//!    (`w_offsets`, `w_adj`) — see [`windows::GraphWindows`].
//! 3. Ranks compute independently, with no synchronization whatsoever: for every
//!    locally owned vertex and every neighbour, the neighbour's adjacency list is
//!    read either locally (same rank) or with the two-get RMA protocol
//!    ([`reader::RemoteReader`]): one get into `w_offsets` for the (start, end)
//!    pair, one get into `w_adj` for the list itself.
//! 4. Optionally, both windows are wrapped in CLaMPI caches; the adjacency cache can
//!    use the degree of the fetched vertex as an application-defined eviction score.
//! 5. Per-edge intersections use the same kernels as the shared-memory path; double
//!    buffering overlaps the communication of the next edge with the computation of
//!    the current one.
//!
//! The entry point is [`DistLcc::run`], which returns per-vertex LCC scores, the
//! triangle count, and a per-rank [`RankReport`] with the timing breakdown and the
//! communication/cache statistics the paper's figures are built from.
//!
//! # Paper map (Figure 3 / Algorithm 3)
//!
//! | Step | Paper description | Module |
//! |---|---|---|
//! | 1 | 1D-partition the CSR graph across ranks | [`rmatc_graph::partition`] |
//! | 2 | Expose `offsets` / `adjacencies` in two RMA windows | [`windows`] |
//! | 3 | Open the passive-target access epoch, no synchronization | [`worker`] (`lock_all`) |
//! | 4 | Get the `(start, end)` pair from `w_offsets` | [`reader`] (`read_offsets`) |
//! | 5 | Get the adjacency list from `w_adj`, cache-intercepted | [`reader`] + `rmatc_clampi` |
//! | 6 | Intersect, accumulate per-vertex closed triplets | [`worker`] + [`crate::intersect`] |
//! | — | Assemble LCC scores and per-rank reports | [`report`] |
//! | — | Overlapped worker: pipelined gets + intra-rank threads (Fig. 6 axis) | [`pipeline`] |
//!
//! # Zero-copy reads
//!
//! The remote-adjacency hot path never materializes a per-edge buffer:
//! [`reader::RemoteReader::read_adjacency`] returns a borrowed
//! `rmatc_clampi::RowRef` view (local window slice, cached entry, or the
//! miss's single transfer buffer), and the worker's
//! [`reader::RemoteReader::count_closing_remote`] goes one step further —
//! cache hits are intersected in place, and misses run the fused
//! copy+intersect kernel ([`crate::intersect::fused`]) that counts the
//! intersection in the same SIMD block pass that lands the row in the buffer
//! the cache retains. Hits and local-rank reads perform zero heap
//! allocations; a miss performs exactly one.
//!
//! # Compressed adjacency
//!
//! With [`DistConfig::storage`] set to
//! [`rmatc_graph::GraphStorage::Compressed`] the same two windows carry
//! delta/varint-compressed rows ([`rmatc_graph::compressed`]): every
//! transferred and cached byte stays compressed end to end, and the fused
//! kernels ([`crate::intersect::compressed`]) decode block-wise *during* the
//! intersection — hits and local reads still allocate nothing. Scores are
//! bit-identical to plain storage; [`DistResult::transfer_compression_ratio`]
//! reports the measured logical-to-stored win. See `docs/COMPRESSION.md`.

pub mod config;
pub mod pipeline;
pub mod reader;
pub mod report;
pub mod windows;
pub mod worker;

pub use config::{CacheSpec, DistConfig, ScoreMode};
pub use report::{DistResult, RankReport, TimingBreakdown};
pub use windows::GraphWindows;

use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::CsrGraph;
use rmatc_rma::{run_ranks, RmaError};

/// Distributed LCC/TC runner.
#[derive(Debug, Clone)]
pub struct DistLcc {
    config: DistConfig,
}

impl DistLcc {
    /// Creates a runner with the given configuration.
    pub fn new(config: DistConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DistConfig {
        &self.config
    }

    /// Partitions `g`, runs the asynchronous distributed computation and assembles
    /// the global result.
    ///
    /// Panics if a rank exhausts its retry budget — only reachable under an
    /// unrecoverable [`rmatc_rma::FaultPlan`]; use [`DistLcc::try_run`] to
    /// observe that as an error instead.
    pub fn run(&self, g: &CsrGraph) -> DistResult {
        self.try_run(g)
            .expect("a rank exhausted its remote-read retry budget")
    }

    /// Runs on an already partitioned graph (setup/distribution time is excluded
    /// from all measurements, as in the paper). Panics like [`DistLcc::run`]
    /// when a rank exhausts its retry budget.
    pub fn run_partitioned(&self, pg: &PartitionedGraph) -> DistResult {
        self.try_run_partitioned(pg)
            .expect("a rank exhausted its remote-read retry budget")
    }

    /// Fallible variant of [`DistLcc::run`]: under fault injection, a rank
    /// that exhausts its retry budget surfaces the first failure as
    /// [`RmaError`] (typically [`RmaError::RetriesExhausted`]) instead of
    /// panicking. Fault-free runs never error.
    pub fn try_run(&self, g: &CsrGraph) -> Result<DistResult, RmaError> {
        let pg = PartitionedGraph::from_global(g, self.config.scheme, self.config.ranks)
            .expect("invalid rank count for this graph");
        self.try_run_partitioned(&pg)
    }

    /// Fallible variant of [`DistLcc::run_partitioned`] (see
    /// [`DistLcc::try_run`]).
    pub fn try_run_partitioned(&self, pg: &PartitionedGraph) -> Result<DistResult, RmaError> {
        let windows = GraphWindows::build_with(pg, self.config.storage);
        let cfg = &self.config;
        let outputs = run_ranks(cfg.ranks, |rank| {
            worker::run_worker(rank, pg, &windows, cfg)
        })
        .into_iter()
        // Lowest failing rank wins: rank order, not completion order, keeps
        // the surfaced error deterministic.
        .collect::<Result<Vec<_>, _>>()?;
        Ok(report::assemble(pg, cfg, outputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::{CostModel, IntersectMethod};
    use rmatc_graph::datasets::{Dataset, DatasetScale};
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::PartitionScheme;
    use rmatc_graph::reference;
    use rmatc_rma::NetworkModel;

    fn small_graph() -> CsrGraph {
        RmatGenerator::paper(9, 8).generate_cleaned(7).into_csr()
    }

    fn base_config(ranks: usize) -> DistConfig {
        DistConfig {
            ranks,
            scheme: PartitionScheme::Block1D,
            method: IntersectMethod::Hybrid,
            cost_model: CostModel::Analytic,
            network: NetworkModel::aries(),
            double_buffering: true,
            cache: None,
            score_mode: ScoreMode::Lru,
            retry: rmatc_rma::RetryPolicy::default(),
            faults: None,
            pipeline_depth: 1,
            intra_threads: 1,
            storage: rmatc_graph::GraphStorage::Plain,
        }
    }

    #[test]
    fn distributed_matches_reference_without_cache() {
        let g = small_graph();
        let expected = reference::lcc_scores(&g);
        for ranks in [1, 2, 4, 8] {
            let result = DistLcc::new(base_config(ranks)).run(&g);
            assert_eq!(
                result.triangle_count,
                reference::count_triangles(&g),
                "p = {ranks}"
            );
            assert_eq!(result.lcc.len(), expected.len());
            for (v, (a, b)) in result.lcc.iter().zip(expected.iter()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "vertex {v}: {a} vs {b} at p = {ranks}"
                );
            }
        }
    }

    #[test]
    fn distributed_matches_reference_with_cache() {
        let g = small_graph();
        let expected = reference::count_triangles(&g);
        let mut cfg = base_config(4);
        cfg.cache = Some(CacheSpec::paper(1 << 20));
        cfg.score_mode = ScoreMode::DegreeCentrality;
        let result = DistLcc::new(cfg).run(&g);
        assert_eq!(result.triangle_count, expected);
        let lcc = reference::lcc_scores(&g);
        for (a, b) in result.lcc.iter().zip(lcc.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        // With a skewed graph and a generous cache, hits must occur.
        assert!(result.cache_hits() > 0);
    }

    #[test]
    fn compressed_storage_matches_reference_and_compresses_transfers() {
        // End-to-end compressed mode: identical scores with and without the
        // cache, and — the point of the exercise — the adjacency bytes that
        // cross the network shrink by at least 2x on the paper's R-MAT graph
        // (delta/varint rows of a skewed degree distribution compress well).
        let g = RmatGenerator::paper(10, 16).generate_cleaned(11).into_csr();
        let expected = reference::lcc_scores(&g);
        let mut cfg = base_config(4);
        cfg.storage = rmatc_graph::GraphStorage::Compressed;
        let plain_lcc = DistLcc::new(base_config(4)).run(&g);
        let uncached = DistLcc::new(cfg).run(&g);
        assert_eq!(uncached.triangle_count, plain_lcc.triangle_count);
        for (v, (a, b)) in uncached.lcc.iter().zip(expected.iter()).enumerate() {
            assert!((a - b).abs() < 1e-12, "vertex {v}: {a} vs {b}");
        }
        // Fewer bytes on the wire than the plain run, same get count.
        assert_eq!(uncached.total_gets(), plain_lcc.total_gets());
        assert!(
            uncached.total_bytes() < plain_lcc.total_bytes(),
            "compressed transfers must shrink wire bytes ({} vs {})",
            uncached.total_bytes(),
            plain_lcc.total_bytes()
        );
        cfg.cache = Some(CacheSpec::paper(1 << 20));
        cfg.score_mode = ScoreMode::DegreeCentrality;
        let cached = DistLcc::new(cfg).run(&g);
        assert_eq!(cached.triangle_count, plain_lcc.triangle_count);
        assert!(cached.cache_hits() > 0);
        let ratio = cached.transfer_compression_ratio();
        assert!(
            ratio >= 2.0,
            "adjacency misses must compress at least 2x on R-MAT (got {ratio:.2}x)"
        );
    }

    #[test]
    fn cyclic_partitioning_is_also_correct() {
        let g = small_graph();
        let mut cfg = base_config(4);
        cfg.scheme = PartitionScheme::Cyclic;
        let result = DistLcc::new(cfg).run(&g);
        assert_eq!(result.triangle_count, reference::count_triangles(&g));
    }

    #[test]
    fn balanced_block_partitioning_is_correct_and_balances_compute() {
        // The degree-weighted boundaries of `BalancedBlock1D` must preserve
        // results and distribute per-rank edge work more evenly than the
        // equal-count blocks on a hub-heavy graph.
        let g = small_graph();
        let mut cfg = base_config(4);
        cfg.scheme = PartitionScheme::BalancedBlock1D;
        let balanced = DistLcc::new(cfg).run(&g);
        assert_eq!(balanced.triangle_count, reference::count_triangles(&g));
        let block = DistLcc::new(base_config(4)).run(&g);
        let spread = |r: &DistResult| {
            let edges: Vec<u64> = r.ranks.iter().map(|rank| rank.edges_processed).collect();
            *edges.iter().max().unwrap() as f64 / *edges.iter().min().unwrap().max(&1) as f64
        };
        assert!(
            spread(&balanced) <= spread(&block),
            "balanced per-rank edge spread {} must not exceed block {}",
            spread(&balanced),
            spread(&block)
        );
    }

    #[test]
    fn work_balanced_partitioning_is_correct_and_balances_compute() {
        // `WorkBalancedBlock1D` equalizes intersection work (deg(u)+deg(v)
        // summed over owned edges) instead of edge count. It must preserve
        // results exactly and its per-rank edge spread must not blow up
        // relative to the equal-count blocks.
        let g = small_graph();
        let mut cfg = base_config(4);
        cfg.scheme = PartitionScheme::WorkBalancedBlock1D;
        let balanced = DistLcc::new(cfg).run(&g);
        assert_eq!(balanced.triangle_count, reference::count_triangles(&g));
        assert_eq!(
            balanced.lcc,
            DistLcc::new(base_config(4)).run(&g).lcc,
            "partitioning must not change scores"
        );
    }

    #[test]
    fn directed_graphs_are_supported() {
        let g = Dataset::LiveJournal1.generate(DatasetScale::Tiny, 3);
        let expected = reference::lcc_scores(&g);
        let result = DistLcc::new(base_config(4)).run(&g);
        for (a, b) in result.lcc.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn caching_reduces_remote_gets() {
        let g = small_graph();
        let uncached = DistLcc::new(base_config(4)).run(&g);
        let mut cfg = base_config(4);
        cfg.cache = Some(CacheSpec::paper(4 << 20));
        let cached = DistLcc::new(cfg).run(&g);
        assert!(
            cached.total_gets() < uncached.total_gets(),
            "caching must eliminate repeated remote reads ({} vs {})",
            cached.total_gets(),
            uncached.total_gets()
        );
        assert!(cached.max_comm_time_ns() < uncached.max_comm_time_ns());
    }

    #[test]
    fn reports_are_complete() {
        let g = small_graph();
        let result = DistLcc::new(base_config(2)).run(&g);
        assert_eq!(result.ranks.len(), 2);
        for report in &result.ranks {
            assert!(report.timing.total_ns() > 0.0);
            assert!(report.edges_processed > 0);
        }
        assert!(result.max_rank_time_ns() >= result.ranks[0].timing.total_ns() - 1e-9);
        assert!(result.remote_edge_fraction > 0.0);
    }

    #[test]
    fn recoverable_faults_leave_results_bit_identical() {
        let g = small_graph();
        let clean = DistLcc::new(base_config(4)).run(&g);
        let mut cfg = base_config(4);
        cfg.faults = Some(rmatc_rma::FaultPlan::light(42));
        cfg.retry = rmatc_rma::RetryPolicy {
            max_attempts: 16,
            ..Default::default()
        };
        let faulted = DistLcc::new(cfg)
            .try_run(&g)
            .expect("light faults are recoverable");
        assert_eq!(faulted.triangle_count, clean.triangle_count);
        assert_eq!(faulted.per_vertex_triangles, clean.per_vertex_triangles);
        assert!(
            faulted.total_fault_events() > 0,
            "the light plan must actually inject faults"
        );
        assert_eq!(clean.total_fault_events(), 0);
    }

    #[test]
    fn unrecoverable_plans_surface_a_clean_error() {
        let g = small_graph();
        let mut cfg = base_config(2);
        cfg.faults = Some(rmatc_rma::FaultPlan::unrecoverable(7));
        cfg.retry = rmatc_rma::RetryPolicy::no_retries();
        let err = DistLcc::new(cfg).try_run(&g).unwrap_err();
        assert!(matches!(err, rmatc_rma::RmaError::RetriesExhausted { .. }));
    }

    #[test]
    fn single_rank_issues_no_remote_gets() {
        let g = small_graph();
        let result = DistLcc::new(base_config(1)).run(&g);
        assert_eq!(result.total_gets(), 0);
        assert_eq!(result.triangle_count, reference::count_triangles(&g));
    }
}
