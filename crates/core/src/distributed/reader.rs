//! The two-get remote-adjacency protocol (steps 4–5 in Figure 3), with optional
//! CLaMPI caching of one or both windows.

use super::config::{DistConfig, ResolvedCaches, ScoreMode};
use super::windows::GraphWindows;
use rmatc_clampi::{CacheStats, CachedWindow};
use rmatc_graph::types::VertexId;
use rmatc_rma::Endpoint;
use std::sync::Arc;

/// Per-rank reader of remote adjacency lists.
///
/// Reading the adjacency of a remote vertex requires two RMA gets: the first reads
/// the `(start, end)` pair from the target's `offsets` array, the second reads
/// `end − start` vertex ids from the target's `adjacencies` array. When caching is
/// enabled each get is first looked up in the corresponding CLaMPI cache
/// (`C_offsets`, `C_adj`); the adjacency entry can carry the vertex degree as its
/// application-defined eviction score.
#[derive(Debug)]
pub struct RemoteReader {
    offsets_plain: rmatc_rma::Window<u64>,
    adj_plain: rmatc_rma::Window<VertexId>,
    offsets_cache: Option<CachedWindow<u64>>,
    adj_cache: Option<CachedWindow<VertexId>>,
    score_mode: ScoreMode,
}

impl RemoteReader {
    /// Builds the reader for one rank. `caches` carries the resolved per-window
    /// CLaMPI configurations (or `None` entries for non-cached windows).
    pub fn new(windows: &GraphWindows, caches: &ResolvedCaches, config: &DistConfig) -> Self {
        Self {
            offsets_plain: windows.offsets.clone(),
            adj_plain: windows.adjacencies.clone(),
            offsets_cache: caches
                .offsets
                .map(|cfg| CachedWindow::new(windows.offsets.clone(), cfg)),
            adj_cache: caches
                .adjacencies
                .map(|cfg| CachedWindow::new(windows.adjacencies.clone(), cfg)),
            score_mode: config.score_mode,
        }
    }

    /// Builds a reader with no caching at all.
    pub fn non_cached(windows: &GraphWindows, config: &DistConfig) -> Self {
        Self::new(
            windows,
            &ResolvedCaches {
                offsets: None,
                adjacencies: None,
            },
            config,
        )
    }

    /// Reads the adjacency list of the vertex with local index `local_idx` on rank
    /// `target`, issuing the two gets (cache-intercepted where enabled).
    pub fn read_adjacency(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        local_idx: usize,
    ) -> Arc<Vec<VertexId>> {
        // First get: the (start, end) offsets pair for the vertex's row.
        let offsets = match &mut self.offsets_cache {
            Some(cache) => cache.get(ep, target, local_idx, 2),
            None => Arc::new(ep.get(&self.offsets_plain, target, local_idx, 2).wait(ep)),
        };
        let start = offsets[0] as usize;
        let end = offsets[1] as usize;
        let len = end - start;
        if len == 0 {
            return Arc::new(Vec::new());
        }
        // After the first get the degree (list length) is known: it becomes the
        // application-defined score of the adjacency entry when degree scoring is on.
        let score = match self.score_mode {
            ScoreMode::Lru => 0.0,
            ScoreMode::DegreeCentrality => len as f64,
        };
        match &mut self.adj_cache {
            Some(cache) => cache.get_scored(ep, target, start, len, score),
            None => Arc::new(ep.get(&self.adj_plain, target, start, len).wait(ep)),
        }
    }

    /// Statistics of the offsets cache, if caching is enabled on that window.
    pub fn offsets_cache_stats(&self) -> Option<CacheStats> {
        self.offsets_cache.as_ref().map(|c| c.stats().clone())
    }

    /// Statistics of the adjacency cache, if caching is enabled on that window.
    pub fn adjacency_cache_stats(&self) -> Option<CacheStats> {
        self.adj_cache.as_ref().map(|c| c.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::config::CacheSpec;
    use crate::intersect::IntersectMethod;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};
    use rmatc_rma::NetworkModel;

    fn setup() -> (PartitionedGraph, GraphWindows, DistConfig) {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
        let windows = GraphWindows::build(&pg);
        let config = DistConfig {
            ranks: 2,
            scheme: PartitionScheme::Block1D,
            method: IntersectMethod::Hybrid,
            network: NetworkModel::aries(),
            double_buffering: false,
            cache: None,
            score_mode: ScoreMode::DegreeCentrality,
        };
        (pg, windows, config)
    }

    #[test]
    fn non_cached_reader_returns_exact_adjacency() {
        let (pg, windows, config) = setup();
        let mut reader = RemoteReader::non_cached(&windows, &config);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        let remote = &pg.partitions[1];
        for (local_idx, _) in remote.global_ids.iter().enumerate().take(20) {
            let got = reader.read_adjacency(&mut ep, 1, local_idx);
            assert_eq!(*got, remote.neighbours_of_local(local_idx));
        }
        ep.unlock_all();
        // Two gets per non-empty row, one per empty row.
        assert!(ep.stats().gets >= 20);
    }

    #[test]
    fn cached_reader_returns_exact_adjacency_and_hits_on_reuse() {
        let (pg, windows, config) = setup();
        let caches = CacheSpec::paper(1 << 20)
            .resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
        let mut reader = RemoteReader::new(&windows, &caches, &config);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        let remote = &pg.partitions[1];
        for round in 0..2 {
            for (local_idx, _) in remote.global_ids.iter().enumerate().take(10) {
                let got = reader.read_adjacency(&mut ep, 1, local_idx);
                assert_eq!(*got, remote.neighbours_of_local(local_idx), "round {round}");
            }
        }
        ep.unlock_all();
        let adj_stats = reader.adjacency_cache_stats().unwrap();
        assert!(
            adj_stats.hits > 0,
            "second round must hit the adjacency cache"
        );
        let off_stats = reader.offsets_cache_stats().unwrap();
        assert!(
            off_stats.hits > 0,
            "second round must hit the offsets cache"
        );
    }

    #[test]
    fn empty_adjacency_rows_need_only_one_get() {
        // Construct a partition where some rows are empty by filtering edges.
        let (_pg, _windows, config) = setup();
        let g = rmatc_graph::CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 0), (4, 5), (5, 4)],
            rmatc_graph::types::Direction::Undirected,
        );
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
        let windows = GraphWindows::build(&pg);
        let mut reader = RemoteReader::non_cached(&windows, &config);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        // Vertex 6 lives on rank 1 (block [4..8)) and has no neighbours.
        let local_idx = pg.partitioner.local_index(6);
        let got = reader.read_adjacency(&mut ep, 1, local_idx);
        assert!(got.is_empty());
        assert_eq!(ep.stats().gets, 1);
        ep.unlock_all();
    }
}
