//! The two-get remote-adjacency protocol (steps 4–5 in Figure 3), with optional
//! CLaMPI caching of one or both windows.

use super::config::{DistConfig, ResolvedCaches, ScoreMode};
use super::windows::GraphWindows;
use crate::intersect::{
    copy_decode_intersect, fused, CostModel, IntersectMethod, ParallelIntersector,
};
use crate::local::{compressed_count_closing_at, count_closing_at};
use rmatc_clampi::{CacheStats, CachedWindow, RowRef};
use rmatc_graph::compressed::decoded_len;
use rmatc_graph::types::{Direction, VertexId};
use rmatc_graph::GraphStorage;
use rmatc_rma::{Endpoint, RmaError};
use std::sync::Arc;

/// Per-rank reader of remote adjacency lists.
///
/// Reading the adjacency of a remote vertex requires two RMA gets: the first reads
/// the `(start, end)` pair from the target's `offsets` array, the second reads
/// `end − start` vertex ids from the target's `adjacencies` array. When caching is
/// enabled each get is first looked up in the corresponding CLaMPI cache
/// (`C_offsets`, `C_adj`); the adjacency entry can carry the vertex degree as its
/// application-defined eviction score.
#[derive(Debug)]
pub struct RemoteReader {
    offsets_plain: rmatc_rma::Window<u64>,
    adj_plain: rmatc_rma::Window<VertexId>,
    offsets_cache: Option<CachedWindow<u64>>,
    adj_cache: Option<CachedWindow<VertexId>>,
    score_mode: ScoreMode,
    /// Encoding of the adjacency window's payload (must match the windows the
    /// reader was built over): plain vertex ids or compressed row words.
    storage: GraphStorage,
    /// Cost model the compressed kernels dispatch through (merge vs skip).
    model: CostModel,
}

impl RemoteReader {
    /// Builds the reader for one rank. `caches` carries the resolved per-window
    /// CLaMPI configurations (or `None` entries for non-cached windows).
    pub fn new(windows: &GraphWindows, caches: &ResolvedCaches, config: &DistConfig) -> Self {
        Self {
            offsets_plain: windows.offsets.clone(),
            adj_plain: windows.adjacencies.clone(),
            offsets_cache: caches
                .offsets
                .map(|cfg| CachedWindow::new(windows.offsets.clone(), cfg)),
            adj_cache: caches
                .adjacencies
                .map(|cfg| CachedWindow::new(windows.adjacencies.clone(), cfg)),
            score_mode: config.score_mode,
            storage: windows.storage,
            model: config.cost_model,
        }
    }

    /// Builds a reader with no caching at all.
    pub fn non_cached(windows: &GraphWindows, config: &DistConfig) -> Self {
        Self::new(
            windows,
            &ResolvedCaches {
                offsets: None,
                adjacencies: None,
            },
            config,
        )
    }

    /// First get of the protocol: the `(start, end)` offsets pair of the row of
    /// `local_idx` on `target` (cache-intercepted when `C_offsets` is enabled).
    /// Every path is self-healing: transient failures and corrupted transfers
    /// retry per the endpoint's [`rmatc_rma::RetryPolicy`].
    fn read_offsets(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        local_idx: usize,
    ) -> Result<(usize, usize), RmaError> {
        let row = match &mut self.offsets_cache {
            Some(cache) => cache.get(ep, target, local_idx, 2)?,
            None if target == ep.rank() => {
                RowRef::Window(ep.local_read(&self.offsets_plain, local_idx, 2))
            }
            None => {
                RowRef::Fetched(ep.get_with_retry(&self.offsets_plain, target, local_idx, 2)?)
            }
        };
        Ok((row[0] as usize, row[1] as usize))
    }

    /// The application-defined eviction score of an adjacency row of `len`
    /// entries (known after the first get: the degree of the fetched vertex).
    /// Under compressed storage `len` counts codec words, a faithful proxy
    /// for degree — the decoded count is not known until the row arrives.
    fn score_for(&self, len: usize) -> f64 {
        match self.score_mode {
            ScoreMode::Lru => 0.0,
            ScoreMode::DegreeCentrality => len as f64,
        }
    }

    /// Reads the adjacency list of the vertex with local index `local_idx` on rank
    /// `target`, issuing the two gets (cache-intercepted where enabled).
    ///
    /// The returned [`RowRef`] is a zero-copy view: local-rank reads borrow the
    /// window, cache hits share the cached buffer, and a miss allocates exactly
    /// once — the transfer buffer, which the cache retains by refcount.
    ///
    /// The row is returned exactly as stored: raw vertex ids under plain
    /// storage, compressed words (decode with
    /// [`rmatc_graph::compressed::decode_row`]) under compressed storage.
    pub fn read_adjacency(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        local_idx: usize,
    ) -> Result<RowRef<'_, VertexId>, RmaError> {
        let (start, end) = self.read_offsets(ep, target, local_idx)?;
        let len = end - start;
        if len == 0 {
            return Ok(RowRef::Window(&[]));
        }
        let score = self.score_for(len);
        match &mut self.adj_cache {
            Some(cache) => cache.get_scored(ep, target, start, len, score),
            None if target == ep.rank() => {
                Ok(RowRef::Window(ep.local_read(&self.adj_plain, start, len)))
            }
            None => Ok(RowRef::Fetched(ep.get_with_retry(
                &self.adj_plain,
                target,
                start,
                len,
            )?)),
        }
    }

    /// Reads the adjacency of `(target, local_idx)` and counts the closing
    /// vertices of the edge `(u, v)` in one protocol round — the distributed
    /// worker's hot path. `adj_u` is the local row, `neighbour_idx` the index
    /// of `v` within it (see [`count_closing_at`]).
    ///
    /// Cache hits and local-window rows are intersected in place — zero heap
    /// allocations. On a miss the fused copy+intersect kernel
    /// ([`fused::copy_intersect`]) counts the intersection in the same block
    /// pass that lands the row in the transfer buffer handed to the cache;
    /// pairs the hybrid cost model routes to a search-class kernel fall back
    /// to a plain transfer followed by the configured kernel over the landed
    /// buffer. The intersection runs on the caller's thread either way, so
    /// `intersector` should be a sequential one (the distributed experiments
    /// map one rank per core, as in the paper).
    #[allow(clippy::too_many_arguments)]
    pub fn count_closing_remote(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        local_idx: usize,
        direction: Direction,
        adj_u: &[VertexId],
        v: VertexId,
        neighbour_idx: usize,
        intersector: &ParallelIntersector,
    ) -> Result<u64, RmaError> {
        let (start, end) = self.read_offsets(ep, target, local_idx)?;
        let len = end - start;
        if len == 0 {
            return Ok(0);
        }
        let score = self.score_for(len);
        if self.storage == GraphStorage::Compressed {
            return self.count_closing_remote_compressed(
                ep,
                target,
                start,
                len,
                score,
                direction,
                adj_u,
                v,
                neighbour_idx,
            );
        }
        match &mut self.adj_cache {
            Some(cache) => cache.get_fused(
                ep,
                target,
                start,
                len,
                score,
                |row| count_closing_at(direction, adj_u, row, v, neighbour_idx, intersector),
                |src| transfer_count_closing(direction, adj_u, v, neighbour_idx, intersector, src),
            ),
            None if target == ep.rank() => {
                let row = ep.local_read(&self.adj_plain, start, len);
                Ok(count_closing_at(
                    direction,
                    adj_u,
                    row,
                    v,
                    neighbour_idx,
                    intersector,
                ))
            }
            None => {
                let (_data, count) =
                    ep.get_map_with_retry(&self.adj_plain, target, start, len, |src| {
                        transfer_count_closing(direction, adj_u, v, neighbour_idx, intersector, src)
                    })?;
                Ok(count)
            }
        }
    }

    /// The compressed-storage leg of [`RemoteReader::count_closing_remote`]:
    /// the fetched region is a compressed row, so hits and local reads run
    /// the fused decompress+intersect kernels *in place* over the stored
    /// words (zero heap allocations), and a miss lands the compressed words
    /// in the single transfer buffer while intersecting block by block
    /// ([`copy_decode_intersect`]) — the cache keeps the row compressed.
    /// Misses also record logical vs stored bytes on the cache, making the
    /// compression win measurable ([`CacheStats::compression_ratio`]).
    #[allow(clippy::too_many_arguments)]
    fn count_closing_remote_compressed(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        start: usize,
        len: usize,
        score: f64,
        direction: Direction,
        adj_u: &[VertexId],
        v: VertexId,
        neighbour_idx: usize,
    ) -> Result<u64, RmaError> {
        let model = &self.model;
        match &mut self.adj_cache {
            Some(cache) => {
                let mut sizes: Option<(u64, u64)> = None;
                let count = cache.get_fused(
                    ep,
                    target,
                    start,
                    len,
                    score,
                    |row| {
                        compressed_count_closing_at(direction, adj_u, row, v, neighbour_idx, model)
                    },
                    |src| {
                        sizes = Some((decoded_len(src) as u64 * 4, src.len() as u64 * 4));
                        compressed_transfer_count_closing(
                            direction,
                            adj_u,
                            v,
                            neighbour_idx,
                            model,
                            src,
                        )
                    },
                )?;
                if let Some((logical, stored)) = sizes {
                    cache.record_compression(logical, stored);
                }
                Ok(count)
            }
            None if target == ep.rank() => {
                let row = ep.local_read(&self.adj_plain, start, len);
                Ok(compressed_count_closing_at(
                    direction,
                    adj_u,
                    row,
                    v,
                    neighbour_idx,
                    model,
                ))
            }
            None => {
                let (_data, count) =
                    ep.get_map_with_retry(&self.adj_plain, target, start, len, |src| {
                        compressed_transfer_count_closing(
                            direction,
                            adj_u,
                            v,
                            neighbour_idx,
                            model,
                            src,
                        )
                    })?;
                Ok(count)
            }
        }
    }

    /// Statistics of the offsets cache, if caching is enabled on that window.
    pub fn offsets_cache_stats(&self) -> Option<CacheStats> {
        self.offsets_cache.as_ref().map(|c| c.stats().clone())
    }

    /// Statistics of the adjacency cache, if caching is enabled on that window.
    pub fn adjacency_cache_stats(&self) -> Option<CacheStats> {
        self.adj_cache.as_ref().map(|c| c.stats().clone())
    }
}

/// The miss-path transfer closure of [`RemoteReader::count_closing_remote`]:
/// lands the exposed source row `src` in a shared buffer and computes the
/// closing count of the edge `(u, v)` against it, fusing the two passes when
/// the resolved kernel is the merge-class SIMD block kernel (the fused kernel
/// *is* that kernel). Search-class pairs copy plainly and run the configured
/// kernel — exactly what [`count_closing_at`] would have done on the landed
/// buffer, so the count is identical either way.
pub(crate) fn transfer_count_closing(
    direction: Direction,
    adj_u: &[VertexId],
    v: VertexId,
    neighbour_idx: usize,
    intersector: &ParallelIntersector,
    src: &[VertexId],
) -> (Arc<[VertexId]>, u64) {
    // Operands come from the same helpers `count_closing_at` uses, and the
    // kernel choice from the same resolver `ParallelIntersector::count`
    // applies — the fused miss path cannot diverge from the hit path.
    let a = crate::local::closing_a_side(direction, adj_u, neighbour_idx);
    let from = crate::local::closing_b_start(direction, src, v);
    if intersector.resolved_method(a.len(), src.len() - from) == IntersectMethod::Simd {
        fused::copy_intersect(src, from, a)
    } else {
        let arc: Arc<[VertexId]> = Arc::from(src);
        let count = intersector.count(a, &arc[from..]);
        (arc, count)
    }
}

/// Compressed counterpart of [`transfer_count_closing`]: `src` is a
/// compressed row, landed word-for-word in the single transfer buffer while
/// each block is decoded into a stack buffer and intersected
/// ([`copy_decode_intersect`]). The operands are derived exactly as the hit
/// path's [`compressed_count_closing_at`] derives them, so miss and hit
/// counts cannot diverge.
pub(crate) fn compressed_transfer_count_closing(
    direction: Direction,
    adj_u: &[VertexId],
    v: VertexId,
    neighbour_idx: usize,
    model: &CostModel,
    src: &[u32],
) -> (Arc<[u32]>, u64) {
    let a = crate::local::closing_a_side(direction, adj_u, neighbour_idx);
    let bound = match direction {
        Direction::Undirected => Some(v),
        Direction::Directed => None,
    };
    copy_decode_intersect(src, a, bound, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::config::CacheSpec;
    use crate::intersect::CostModel;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};
    use rmatc_rma::NetworkModel;

    fn setup() -> (PartitionedGraph, GraphWindows, DistConfig) {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
        let windows = GraphWindows::build(&pg);
        let config = DistConfig {
            ranks: 2,
            scheme: PartitionScheme::Block1D,
            method: IntersectMethod::Hybrid,
            cost_model: CostModel::Analytic,
            network: NetworkModel::aries(),
            double_buffering: false,
            cache: None,
            score_mode: ScoreMode::DegreeCentrality,
            retry: rmatc_rma::RetryPolicy::default(),
            faults: None,
            pipeline_depth: 1,
            intra_threads: 1,
            storage: GraphStorage::Plain,
        };
        (pg, windows, config)
    }

    #[test]
    fn non_cached_reader_returns_exact_adjacency() {
        let (pg, windows, config) = setup();
        let mut reader = RemoteReader::non_cached(&windows, &config);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        let remote = &pg.partitions[1];
        for (local_idx, _) in remote.global_ids.iter().enumerate().take(20) {
            let got = reader.read_adjacency(&mut ep, 1, local_idx).unwrap();
            assert_eq!(got.as_slice(), remote.neighbours_of_local(local_idx));
        }
        ep.unlock_all();
        // Two gets per non-empty row, one per empty row.
        assert!(ep.stats().gets >= 20);
    }

    #[test]
    fn cached_reader_returns_exact_adjacency_and_hits_on_reuse() {
        let (pg, windows, config) = setup();
        // The paper's `0.8 · |V|`-byte offsets cache cannot hold this test's
        // whole 10-row working set on so small a graph, so second-round hits
        // would depend on the eviction pattern (and through the slot hash on
        // the process-global window-id draw). Size it explicitly instead —
        // the test is about reuse being served from cache, not about capacity.
        let mut spec = CacheSpec::paper(1 << 20);
        spec.offsets_bytes = Some(1 << 10);
        let caches = spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
        let mut reader = RemoteReader::new(&windows, &caches, &config);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        let remote = &pg.partitions[1];
        for round in 0..2 {
            for (local_idx, _) in remote.global_ids.iter().enumerate().take(10) {
                let got = reader.read_adjacency(&mut ep, 1, local_idx).unwrap();
                assert_eq!(
                    got.as_slice(),
                    remote.neighbours_of_local(local_idx),
                    "round {round}"
                );
            }
        }
        ep.unlock_all();
        let adj_stats = reader.adjacency_cache_stats().unwrap();
        assert!(
            adj_stats.hits > 0,
            "second round must hit the adjacency cache"
        );
        let off_stats = reader.offsets_cache_stats().unwrap();
        assert!(
            off_stats.hits > 0,
            "second round must hit the offsets cache"
        );
    }

    #[test]
    fn empty_adjacency_rows_need_only_one_get() {
        // Construct a partition where some rows are empty by filtering edges.
        let (_pg, _windows, config) = setup();
        let g = rmatc_graph::CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 0), (4, 5), (5, 4)],
            rmatc_graph::types::Direction::Undirected,
        );
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
        let windows = GraphWindows::build(&pg);
        let mut reader = RemoteReader::non_cached(&windows, &config);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        // Vertex 6 lives on rank 1 (block [4..8)) and has no neighbours.
        let local_idx = pg.partitioner.local_index(6);
        let got = reader.read_adjacency(&mut ep, 1, local_idx).unwrap();
        assert!(got.is_empty());
        assert_eq!(ep.stats().gets, 1);
        ep.unlock_all();
    }

    #[test]
    fn fused_count_matches_separate_read_and_intersect() {
        // Cached and non-cached fused counts must equal reading the row and
        // running `count_closing_at` over it, for every edge and both rounds
        // (miss then hit).
        let (pg, windows, config) = setup();
        let caches = CacheSpec::paper(1 << 20)
            .resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
        let intersector = ParallelIntersector::new(config.method, 1, usize::MAX);
        let part = &pg.partitions[0];
        for cached in [false, true] {
            let mut fused_reader = if cached {
                RemoteReader::new(&windows, &caches, &config)
            } else {
                RemoteReader::non_cached(&windows, &config)
            };
            let mut plain_reader = RemoteReader::non_cached(&windows, &config);
            let mut ep_a = Endpoint::new(0, 2, config.network);
            let mut ep_b = Endpoint::new(0, 2, config.network);
            ep_a.lock_all();
            ep_b.lock_all();
            for _round in 0..2 {
                for local_idx in 0..part.local_vertex_count() {
                    let adj_u = part.neighbours_of_local(local_idx);
                    for (k, &v) in adj_u.iter().enumerate() {
                        if pg.partitioner.owner(v) != 1 {
                            continue;
                        }
                        let v_local = pg.partitioner.local_index(v);
                        let got = fused_reader
                            .count_closing_remote(
                                &mut ep_a,
                                1,
                                v_local,
                                pg.direction,
                                adj_u,
                                v,
                                k,
                                &intersector,
                            )
                            .unwrap();
                        let row = plain_reader
                            .read_adjacency(&mut ep_b, 1, v_local)
                            .unwrap()
                            .to_vec();
                        let expected =
                            count_closing_at(pg.direction, adj_u, &row, v, k, &intersector);
                        assert_eq!(got, expected, "cached={cached} u_local={local_idx} v={v}");
                    }
                }
            }
            ep_a.unlock_all();
            ep_b.unlock_all();
        }
    }

    #[test]
    fn compressed_fused_counts_match_plain_for_every_edge_and_round() {
        // The compressed reader (hit, miss and local paths) must produce the
        // exact counts the plain reader produces, and record logical vs
        // stored bytes on the cache while doing so.
        let (pg, plain_windows, mut config) = setup();
        config.storage = GraphStorage::Compressed;
        let windows = GraphWindows::build_with(&pg, GraphStorage::Compressed);
        let caches = CacheSpec::paper(1 << 20)
            .resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
        let intersector = ParallelIntersector::new(config.method, 1, usize::MAX);
        let part = &pg.partitions[0];
        for cached in [false, true] {
            let mut reader = if cached {
                RemoteReader::new(&windows, &caches, &config)
            } else {
                RemoteReader::non_cached(&windows, &config)
            };
            let mut plain_config = config;
            plain_config.storage = GraphStorage::Plain;
            let mut plain_reader = RemoteReader::non_cached(&plain_windows, &plain_config);
            let mut ep_a = Endpoint::new(0, 2, config.network);
            let mut ep_b = Endpoint::new(0, 2, config.network);
            ep_a.lock_all();
            ep_b.lock_all();
            for _round in 0..2 {
                for local_idx in 0..part.local_vertex_count() {
                    let adj_u = part.neighbours_of_local(local_idx);
                    for (k, &v) in adj_u.iter().enumerate() {
                        if pg.partitioner.owner(v) != 1 {
                            continue;
                        }
                        let v_local = pg.partitioner.local_index(v);
                        let got = reader
                            .count_closing_remote(
                                &mut ep_a,
                                1,
                                v_local,
                                pg.direction,
                                adj_u,
                                v,
                                k,
                                &intersector,
                            )
                            .unwrap();
                        let row = plain_reader
                            .read_adjacency(&mut ep_b, 1, v_local)
                            .unwrap()
                            .to_vec();
                        let expected =
                            count_closing_at(pg.direction, adj_u, &row, v, k, &intersector);
                        assert_eq!(got, expected, "cached={cached} u_local={local_idx} v={v}");
                    }
                }
            }
            ep_a.unlock_all();
            ep_b.unlock_all();
            if cached {
                let stats = reader.adjacency_cache_stats().unwrap();
                assert!(stats.hits > 0, "second round must hit");
                assert!(
                    stats.stored_bytes > 0 && stats.logical_bytes > stats.stored_bytes,
                    "misses must record a compression win ({} logical vs {} stored)",
                    stats.logical_bytes,
                    stats.stored_bytes
                );
            }
        }
    }
}
