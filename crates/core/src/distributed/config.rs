//! Configuration of the distributed runner: rank count, partitioning, intersection
//! method, network model, double buffering, and the CLaMPI cache budget split.

use crate::intersect::{CostModel, IntersectMethod};
use rmatc_clampi::{ClampiConfig, EvictionPolicyKind};
use rmatc_graph::partition::PartitionScheme;
use rmatc_graph::GraphStorage;
use rmatc_rma::{FaultPlan, NetworkModel, RetryPolicy};

/// Which eviction score the adjacency cache uses (Figure 8's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ScoreMode {
    /// CLaMPI's original LRU + positional score.
    Lru,
    /// The paper's extension: the out-degree of the fetched vertex is passed as the
    /// application-defined score, protecting high-degree (high-reuse) entries.
    DegreeCentrality,
}

/// Cache budget for one rank, split between the offsets cache and the adjacency
/// cache the way the paper does for its overall-performance experiments.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheSpec {
    /// Total bytes reserved per rank for both CLaMPI caches.
    pub total_bytes: usize,
    /// Bytes reserved for `C_offsets`; `None` uses the paper's rule of
    /// `0.8 · |V|` bytes (which stores (start, end) pairs for `0.4 · |V|` vertices).
    pub offsets_bytes: Option<usize>,
    /// Enable caching of the offsets window.
    pub cache_offsets: bool,
    /// Enable caching of the adjacencies window.
    pub cache_adjacencies: bool,
    /// Enable CLaMPI's adaptive resizing heuristic.
    pub adaptive: bool,
    /// Eviction-policy family both windows' caches run. The default,
    /// [`EvictionPolicyKind::PaperScore`], reproduces the paper exactly;
    /// [`ScoreMode`] then selects which score variant it computes.
    pub policy: EvictionPolicyKind,
}

impl CacheSpec {
    /// The paper's configuration: both windows cached, offsets cache sized at
    /// `0.8 · |V|` bytes, remainder of the budget to the adjacency cache.
    pub fn paper(total_bytes: usize) -> Self {
        Self {
            total_bytes,
            offsets_bytes: None,
            cache_offsets: true,
            cache_adjacencies: true,
            adaptive: false,
            policy: EvictionPolicyKind::PaperScore,
        }
    }

    /// Cache only the offsets window (Figure 7, left pair of panels).
    pub fn offsets_only(bytes: usize) -> Self {
        Self {
            total_bytes: bytes,
            offsets_bytes: Some(bytes),
            cache_offsets: true,
            cache_adjacencies: false,
            adaptive: false,
            policy: EvictionPolicyKind::PaperScore,
        }
    }

    /// Cache only the adjacencies window (Figure 7, right pair of panels).
    pub fn adjacencies_only(bytes: usize) -> Self {
        Self {
            total_bytes: bytes,
            offsets_bytes: Some(0),
            cache_offsets: false,
            cache_adjacencies: true,
            adaptive: false,
            policy: EvictionPolicyKind::PaperScore,
        }
    }

    /// Enables adaptive tuning.
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// Selects the eviction-policy family for both windows' caches
    /// (see [`rmatc_clampi::policy`]).
    pub fn with_policy(mut self, policy: EvictionPolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Resolves the per-window CLaMPI configurations for a graph with `n_global`
    /// vertices whose full adjacency array occupies `graph_adj_bytes`.
    ///
    /// Hash-table sizing follows Section III-B1: the offsets cache stores fixed
    /// 16-byte (start, end) entries, so one slot per storable entry; the adjacency
    /// cache uses the power-law estimate `n · f^α` with `α = 2`, where `f` is the
    /// fraction of the adjacency data the cache can hold.
    pub fn resolve(&self, n_global: usize, graph_adj_bytes: u64) -> ResolvedCaches {
        let offsets_bytes = self
            .offsets_bytes
            .unwrap_or(((n_global as f64) * 0.8) as usize)
            .min(self.total_bytes);
        let adj_bytes =
            self.total_bytes
                .saturating_sub(if self.cache_offsets { offsets_bytes } else { 0 });
        let offsets_cfg = if self.cache_offsets && offsets_bytes > 0 {
            let slots = ClampiConfig::offsets_table_slots(offsets_bytes, 16);
            let mut cfg = ClampiConfig::always_cache(offsets_bytes, slots).with_policy(self.policy);
            if self.adaptive {
                cfg = cfg.with_adaptive();
            }
            Some(cfg)
        } else {
            None
        };
        let adj_cfg = if self.cache_adjacencies && adj_bytes > 0 {
            let fraction = if graph_adj_bytes == 0 {
                1.0
            } else {
                (adj_bytes as f64 / graph_adj_bytes as f64).min(1.0)
            };
            let slots = ClampiConfig::adjacency_table_slots(n_global, fraction);
            let mut cfg = ClampiConfig::always_cache(adj_bytes, slots).with_policy(self.policy);
            if self.adaptive {
                cfg = cfg.with_adaptive();
            }
            Some(cfg)
        } else {
            None
        };
        ResolvedCaches {
            offsets: offsets_cfg,
            adjacencies: adj_cfg,
        }
    }
}

/// Concrete per-window cache configurations produced by [`CacheSpec::resolve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedCaches {
    /// Configuration for `C_offsets`, if that window is cached.
    pub offsets: Option<ClampiConfig>,
    /// Configuration for `C_adj`, if that window is cached.
    pub adjacencies: Option<ClampiConfig>,
}

/// Full configuration of a distributed run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistConfig {
    /// Number of ranks (the paper's "computing nodes").
    pub ranks: usize,
    /// Vertex partitioning scheme.
    pub scheme: PartitionScheme,
    /// Intersection kernel.
    pub method: IntersectMethod,
    /// Cost model [`IntersectMethod::Hybrid`] resolves kernels through on
    /// every rank: analytic (default) or machine-calibrated (see
    /// [`crate::intersect::calibrate`]). Kernel choice only — rank outputs
    /// are identical under any model.
    pub cost_model: CostModel,
    /// Network cost model for remote reads.
    pub network: NetworkModel,
    /// Overlap the communication of the next edge with the computation of the
    /// current one (Section III-A's double buffering).
    pub double_buffering: bool,
    /// CLaMPI caching; `None` runs the non-cached variant.
    pub cache: Option<CacheSpec>,
    /// Eviction score mode for the adjacency cache.
    pub score_mode: ScoreMode,
    /// Retry policy of the self-healing remote-read path: attempt budget,
    /// exponential backoff and completion timeout, all charged through the
    /// cost accounting.
    pub retry: RetryPolicy,
    /// Deterministic fault injection; `None` (the default) runs the reliable
    /// network with zero overhead (no checksums computed).
    pub faults: Option<FaultPlan>,
    /// Software-pipelining depth of the overlapped worker loop: how many
    /// remote adjacency gets are kept in flight ahead of the computation.
    /// `0` or `1` runs the classic issue-wait-compute loop; `D ≥ 2` issues up
    /// to `D` gets before draining the oldest, overlapping their modeled
    /// latency with the intersections of already-landed rows (see
    /// `docs/OVERLAP.md`).
    pub pipeline_depth: usize,
    /// Worker threads *inside* each rank. `1` (the default) keeps the rank
    /// single-threaded; `T ≥ 2` splits the rank's local vertices across `T`
    /// pool tasks, each with its own RMA endpoint, sharing one lock-sharded
    /// CLaMPI cache ([`rmatc_clampi::ShardedClampi`]).
    pub intra_threads: usize,
    /// Adjacency storage exposed in the RMA windows:
    /// [`GraphStorage::Plain`] (the default) exposes raw CSR rows;
    /// [`GraphStorage::Compressed`] exposes delta/varint-compressed rows
    /// ([`rmatc_graph::compressed`]), transfers and caches them compressed,
    /// and intersects through the fused decompress kernels
    /// ([`crate::intersect::compressed`]). Scores are bit-identical either
    /// way. The constructors honour `RMATC_STORAGE=compressed`.
    pub storage: GraphStorage,
}

impl DistConfig {
    /// Non-cached baseline configuration on `ranks` ranks.
    pub fn non_cached(ranks: usize) -> Self {
        Self {
            ranks,
            scheme: PartitionScheme::Block1D,
            method: IntersectMethod::Hybrid,
            cost_model: CostModel::Analytic,
            network: NetworkModel::aries(),
            double_buffering: true,
            cache: None,
            score_mode: ScoreMode::Lru,
            retry: RetryPolicy::default(),
            faults: None,
            pipeline_depth: 1,
            intra_threads: 1,
            storage: GraphStorage::from_env(),
        }
    }

    /// Cached configuration with the paper's budget split.
    pub fn cached(ranks: usize, cache_bytes: usize) -> Self {
        Self {
            cache: Some(CacheSpec::paper(cache_bytes)),
            ..Self::non_cached(ranks)
        }
    }

    /// Switches the adjacency-cache eviction score to degree centrality.
    pub fn with_degree_scores(mut self) -> Self {
        self.score_mode = ScoreMode::DegreeCentrality;
        self
    }

    /// Selects the eviction-policy family both windows' caches run. A no-op
    /// on the non-cached configuration (there is no cache to configure).
    pub fn with_eviction_policy(mut self, policy: EvictionPolicyKind) -> Self {
        if let Some(cache) = self.cache.as_mut() {
            cache.policy = policy;
        }
        self
    }

    /// Same configuration with a different cost model for `Hybrid`
    /// resolution on every rank.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Same configuration with a different retry policy for the self-healing
    /// read path.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables deterministic fault injection per `plan` (chaos testing). Use
    /// [`crate::DistLcc::try_run`] to observe unrecoverable plans as errors
    /// instead of panics.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the software-pipelining depth of the overlapped worker loop
    /// (`0` and `1` both mean "no pipelining").
    pub fn with_pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Sets the number of worker threads inside each rank (`0` and `1` both
    /// mean "single-threaded rank").
    pub fn with_intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads;
        self
    }

    /// Selects the adjacency storage mode exposed in the RMA windows (see
    /// [`DistConfig::storage`]).
    pub fn with_storage(mut self, storage: GraphStorage) -> Self {
        self.storage = storage;
        self
    }

    /// The effective pipeline depth (`max(depth, 1)`).
    pub fn effective_pipeline_depth(&self) -> usize {
        self.pipeline_depth.max(1)
    }

    /// The effective intra-rank thread count (`max(threads, 1)`).
    pub fn effective_intra_threads(&self) -> usize {
        self.intra_threads.max(1)
    }

    /// Whether this configuration takes the overlapped (pipelined and/or
    /// intra-rank-threaded) worker path instead of the classic sequential one.
    pub fn overlapped(&self) -> bool {
        self.effective_pipeline_depth() > 1 || self.effective_intra_threads() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_gives_offsets_point_eight_n() {
        let spec = CacheSpec::paper(1 << 20);
        let resolved = spec.resolve(100_000, 10 << 20);
        let offsets = resolved.offsets.expect("offsets cache enabled");
        assert_eq!(offsets.capacity_bytes, 80_000);
        let adj = resolved.adjacencies.expect("adjacency cache enabled");
        assert_eq!(adj.capacity_bytes, (1 << 20) - 80_000);
    }

    #[test]
    fn offsets_only_disables_adjacency_cache() {
        let resolved = CacheSpec::offsets_only(1 << 16).resolve(1_000, 1 << 20);
        assert!(resolved.offsets.is_some());
        assert!(resolved.adjacencies.is_none());
    }

    #[test]
    fn adjacencies_only_disables_offsets_cache() {
        let resolved = CacheSpec::adjacencies_only(1 << 16).resolve(1_000, 1 << 20);
        assert!(resolved.offsets.is_none());
        let adj = resolved.adjacencies.unwrap();
        assert_eq!(adj.capacity_bytes, 1 << 16);
    }

    #[test]
    fn adjacency_slots_shrink_with_smaller_caches() {
        let big = CacheSpec::adjacencies_only(1 << 20).resolve(100_000, 1 << 20);
        let small = CacheSpec::adjacencies_only(1 << 14).resolve(100_000, 1 << 20);
        assert!(big.adjacencies.unwrap().table_slots > small.adjacencies.unwrap().table_slots);
    }

    #[test]
    fn adaptive_flag_propagates() {
        let resolved = CacheSpec::paper(1 << 20)
            .with_adaptive()
            .resolve(1_000, 1 << 20);
        assert!(resolved.offsets.unwrap().adaptive.is_some());
        assert!(resolved.adjacencies.unwrap().adaptive.is_some());
    }

    #[test]
    fn tiny_budget_never_exceeds_total() {
        let spec = CacheSpec::paper(1_000);
        let resolved = spec.resolve(10_000, 1 << 20);
        // 0.8 · |V| = 8,000 exceeds the budget, so it is clamped to the budget and
        // the adjacency cache gets nothing.
        assert_eq!(resolved.offsets.unwrap().capacity_bytes, 1_000);
        assert!(resolved.adjacencies.is_none());
    }

    #[test]
    fn eviction_policy_threads_through_resolve() {
        let spec = CacheSpec::paper(1 << 20);
        assert_eq!(spec.policy, EvictionPolicyKind::PaperScore);
        let resolved = spec
            .with_policy(EvictionPolicyKind::Gdsf)
            .resolve(100_000, 10 << 20);
        assert_eq!(resolved.offsets.unwrap().policy, EvictionPolicyKind::Gdsf);
        assert_eq!(
            resolved.adjacencies.unwrap().policy,
            EvictionPolicyKind::Gdsf
        );
        // And via the DistConfig builder.
        let c = DistConfig::cached(4, 1 << 20).with_eviction_policy(EvictionPolicyKind::Lfu);
        assert_eq!(c.cache.unwrap().policy, EvictionPolicyKind::Lfu);
        // No cache, no-op.
        let nc = DistConfig::non_cached(4).with_eviction_policy(EvictionPolicyKind::Lfu);
        assert!(nc.cache.is_none());
    }

    #[test]
    fn config_builders() {
        let c = DistConfig::cached(8, 1 << 20).with_degree_scores();
        assert_eq!(c.ranks, 8);
        assert!(c.cache.is_some());
        assert_eq!(c.score_mode, ScoreMode::DegreeCentrality);
        let nc = DistConfig::non_cached(4);
        assert!(nc.cache.is_none());
        assert!(nc.faults.is_none(), "faults are opt-in");
        let faulted = nc
            .with_faults(FaultPlan::light(9))
            .with_retry(RetryPolicy::no_retries());
        assert_eq!(faulted.faults, Some(FaultPlan::light(9)));
        assert_eq!(faulted.retry.max_attempts, 1);
    }

    #[test]
    fn overlap_knobs_default_off_and_normalize() {
        let c = DistConfig::non_cached(2);
        assert_eq!(c.pipeline_depth, 1);
        assert_eq!(c.intra_threads, 1);
        assert!(!c.overlapped());
        // 0 and 1 both mean "off" for either knob.
        assert!(!c.with_pipeline_depth(0).overlapped());
        assert_eq!(c.with_pipeline_depth(0).effective_pipeline_depth(), 1);
        assert_eq!(c.with_intra_threads(0).effective_intra_threads(), 1);
        let p = c.with_pipeline_depth(4);
        assert!(p.overlapped());
        assert_eq!(p.effective_pipeline_depth(), 4);
        let t = c.with_intra_threads(3);
        assert!(t.overlapped());
        assert_eq!(t.effective_intra_threads(), 3);
    }
}
