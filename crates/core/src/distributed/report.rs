//! Assembly of per-rank worker outputs into the global result, and the per-rank
//! reports (timing breakdown, communication and cache statistics) that the
//! evaluation figures are built from.

use super::config::DistConfig;
use super::worker::WorkerOutput;
use crate::lcc;
use rmatc_clampi::CacheStats;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::Direction;
use rmatc_rma::RankStats;

/// Timing breakdown of one rank, combining measured computation with modeled
/// communication (see the crate documentation of [`rmatc_rma`] for the model).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingBreakdown {
    /// CPU time of the rank's edge loop, in nanoseconds.
    pub compute_ns: f64,
    /// Modeled (charged, non-overlapped) communication time, in nanoseconds.
    pub comm_ns: f64,
    /// Modeled time of local reads and cache hits, in nanoseconds.
    pub local_ns: f64,
    /// Modeled communication time hidden behind computation by double buffering.
    pub overlapped_ns: f64,
}

impl TimingBreakdown {
    /// Total modeled running time of the rank.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.comm_ns + self.local_ns
    }

    /// Fraction of the total spent in (non-overlapped) communication.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            0.0
        } else {
            self.comm_ns / total
        }
    }
}

/// Report of one rank's run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankReport {
    /// Rank id.
    pub rank: usize,
    /// Number of locally owned vertices.
    pub local_vertices: usize,
    /// Directed edges processed.
    pub edges_processed: u64,
    /// Edges that required a remote read.
    pub remote_edges: u64,
    /// Timing breakdown.
    pub timing: TimingBreakdown,
    /// RMA statistics.
    pub rma: RankStats,
    /// Offsets-cache statistics, when enabled.
    pub offsets_cache: Option<CacheStats>,
    /// Adjacency-cache statistics, when enabled.
    pub adjacency_cache: Option<CacheStats>,
}

impl RankReport {
    /// Average modeled time per remote read issued by this rank, in nanoseconds —
    /// the y-axis of Figure 8 (left).
    pub fn avg_remote_read_ns(&self) -> f64 {
        let reads = self.remote_edges.max(1);
        (self.timing.comm_ns + self.timing.overlapped_ns + self.timing.local_ns) / reads as f64
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistResult {
    /// LCC score of every global vertex.
    pub lcc: Vec<f64>,
    /// Closed-triplet count of every global vertex.
    pub per_vertex_triangles: Vec<u64>,
    /// Global triangle count (undirected) or closed-triplet total (directed).
    pub triangle_count: u64,
    /// Per-rank reports.
    pub ranks: Vec<RankReport>,
    /// Fraction of directed edges with endpoints on different ranks.
    pub remote_edge_fraction: f64,
    /// Number of ranks used.
    pub rank_count: usize,
}

impl DistResult {
    /// The paper reports "the median of the longest-running node": the running time
    /// of a configuration is the maximum total time over its ranks.
    pub fn max_rank_time_ns(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.timing.total_ns())
            .fold(0.0, f64::max)
    }

    /// Maximum modeled communication time over ranks.
    pub fn max_comm_time_ns(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| r.timing.comm_ns)
            .fold(0.0, f64::max)
    }

    /// Total RMA gets across ranks.
    pub fn total_gets(&self) -> u64 {
        self.ranks.iter().map(|r| r.rma.gets).sum()
    }

    /// Total bytes moved across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.rma.bytes).sum()
    }

    /// Total injected-fault events observed across ranks (retries, transient
    /// failures, timeouts, checksum failures, delays, cache invalidations/
    /// rejections/bypasses). Zero on fault-free runs — the chaos suite uses
    /// this to prove counters fire exactly when faults are injected.
    pub fn total_fault_events(&self) -> u64 {
        self.ranks.iter().map(|r| r.rma.fault_events()).sum()
    }

    /// Total cache hits (both caches, all ranks).
    pub fn cache_hits(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| {
                r.offsets_cache.as_ref().map(|c| c.hits).unwrap_or(0)
                    + r.adjacency_cache.as_ref().map(|c| c.hits).unwrap_or(0)
            })
            .sum()
    }

    /// Aggregated adjacency-cache statistics across ranks (Figure 7/8 report the
    /// adjacency cache's miss rate).
    pub fn adjacency_cache_totals(&self) -> Option<CacheStats> {
        let mut any = false;
        let mut out = CacheStats::default();
        for r in &self.ranks {
            if let Some(c) = &r.adjacency_cache {
                out.merge(c);
                any = true;
            }
        }
        any.then_some(out)
    }

    /// Aggregated offsets-cache statistics across ranks.
    pub fn offsets_cache_totals(&self) -> Option<CacheStats> {
        let mut any = false;
        let mut out = CacheStats::default();
        for r in &self.ranks {
            if let Some(c) = &r.offsets_cache {
                out.merge(c);
                any = true;
            }
        }
        any.then_some(out)
    }

    /// Aggregate logical-to-stored byte ratio of the adjacency rows that
    /// crossed the network on cache misses — the measured win of
    /// [`rmatc_graph::GraphStorage::Compressed`]. `1.0` under plain storage,
    /// without a cache, or before any miss.
    pub fn transfer_compression_ratio(&self) -> f64 {
        self.adjacency_cache_totals()
            .map(|c| c.compression_ratio())
            .unwrap_or(1.0)
    }

    /// Load imbalance: maximum rank time divided by the mean rank time.
    pub fn time_imbalance(&self) -> f64 {
        let times: Vec<f64> = self.ranks.iter().map(|r| r.timing.total_ns()).collect();
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.max_rank_time_ns() / mean
        }
    }

    /// Average LCC across all vertices.
    pub fn average_lcc(&self) -> f64 {
        lcc::average(&self.lcc)
    }
}

/// Combines worker outputs into the global [`DistResult`].
pub fn assemble(
    pg: &PartitionedGraph,
    _config: &DistConfig,
    outputs: Vec<WorkerOutput>,
) -> DistResult {
    let n = pg.global_vertex_count();
    let mut per_vertex_triangles = vec![0u64; n];
    let mut degrees = vec![0u32; n];
    let mut ranks = Vec::with_capacity(outputs.len());
    for out in outputs {
        let part = &pg.partitions[out.rank];
        for (local_idx, &gv) in part.global_ids.iter().enumerate() {
            per_vertex_triangles[gv as usize] = out.local_triangles[local_idx];
            degrees[gv as usize] = part.csr.degree(local_idx as u32);
        }
        ranks.push(RankReport {
            rank: out.rank,
            local_vertices: part.local_vertex_count(),
            edges_processed: out.edges_processed,
            remote_edges: out.remote_edges,
            timing: TimingBreakdown {
                compute_ns: out.compute_ns as f64,
                comm_ns: out.rma.comm_time_ns,
                local_ns: out.rma.local_time_ns,
                overlapped_ns: out.rma.overlapped_ns,
            },
            rma: out.rma,
            offsets_cache: out.offsets_cache,
            adjacency_cache: out.adjacency_cache,
        });
    }
    ranks.sort_by_key(|r| r.rank);
    let lcc = lcc::scores_from_counts(pg.direction, &degrees, &per_vertex_triangles);
    let total: u64 = per_vertex_triangles.iter().sum();
    let triangle_count = match pg.direction {
        Direction::Undirected => total / 3,
        Direction::Directed => total,
    };
    DistResult {
        lcc,
        per_vertex_triangles,
        triangle_count,
        remote_edge_fraction: pg.remote_edge_fraction(),
        rank_count: pg.ranks(),
        ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rank: usize, compute: f64, comm: f64) -> RankReport {
        RankReport {
            rank,
            local_vertices: 10,
            edges_processed: 100,
            remote_edges: 50,
            timing: TimingBreakdown {
                compute_ns: compute,
                comm_ns: comm,
                local_ns: 0.0,
                overlapped_ns: 0.0,
            },
            rma: RankStats::new(2),
            offsets_cache: None,
            adjacency_cache: None,
        }
    }

    fn result(ranks: Vec<RankReport>) -> DistResult {
        DistResult {
            lcc: vec![0.5; 4],
            per_vertex_triangles: vec![1; 4],
            triangle_count: 1,
            rank_count: ranks.len(),
            remote_edge_fraction: 0.5,
            ranks,
        }
    }

    #[test]
    fn timing_breakdown_totals_and_fractions() {
        let t = TimingBreakdown {
            compute_ns: 100.0,
            comm_ns: 300.0,
            local_ns: 0.0,
            overlapped_ns: 50.0,
        };
        assert_eq!(t.total_ns(), 400.0);
        assert!((t.comm_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(TimingBreakdown::default().comm_fraction(), 0.0);
    }

    #[test]
    fn max_rank_time_is_the_longest_running_node() {
        let r = result(vec![report(0, 100.0, 200.0), report(1, 100.0, 900.0)]);
        assert_eq!(r.max_rank_time_ns(), 1_000.0);
        assert_eq!(r.max_comm_time_ns(), 900.0);
        assert!((r.time_imbalance() - 1_000.0 / 650.0).abs() < 1e-9);
    }

    #[test]
    fn average_remote_read_time_handles_zero_reads() {
        let mut rep = report(0, 1.0, 10.0);
        rep.remote_edges = 0;
        assert_eq!(rep.avg_remote_read_ns(), 10.0);
    }

    #[test]
    fn cache_totals_absent_when_no_cache() {
        let r = result(vec![report(0, 1.0, 1.0)]);
        assert!(r.adjacency_cache_totals().is_none());
        assert!(r.offsets_cache_totals().is_none());
        assert_eq!(r.cache_hits(), 0);
    }

    #[test]
    fn cache_totals_merge_across_ranks() {
        let mut a = report(0, 1.0, 1.0);
        a.adjacency_cache = Some(CacheStats {
            hits: 5,
            misses: 5,
            ..Default::default()
        });
        let mut b = report(1, 1.0, 1.0);
        b.adjacency_cache = Some(CacheStats {
            hits: 15,
            misses: 5,
            ..Default::default()
        });
        let r = result(vec![a, b]);
        let totals = r.adjacency_cache_totals().unwrap();
        assert_eq!(totals.hits, 20);
        assert!((totals.hit_rate() - 20.0 / 30.0).abs() < 1e-12);
        assert_eq!(r.cache_hits(), 20);
    }

    #[test]
    fn average_lcc_is_mean_of_scores() {
        let r = result(vec![report(0, 1.0, 1.0)]);
        assert!((r.average_lcc() - 0.5).abs() < 1e-12);
    }
}
