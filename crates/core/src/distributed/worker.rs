//! The per-rank computation of Algorithm 3: iterate over locally owned vertices and
//! their edges, fetch remote adjacency lists with the two-get protocol, intersect,
//! and accumulate closed-triplet counts — with no synchronization with other ranks.

use super::config::{DistConfig, ResolvedCaches};
use super::reader::RemoteReader;
use super::windows::GraphWindows;
use crate::intersect::ParallelIntersector;
use crate::local::count_closing_at;
use rmatc_clampi::CacheStats;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_rma::{Endpoint, RankStats, RmaError, ThreadTimer};

/// Everything a rank produces: its local triangle counts plus the statistics the
/// evaluation aggregates.
#[derive(Debug, Clone)]
pub struct WorkerOutput {
    /// The rank that produced this output.
    pub rank: usize,
    /// Closed-triplet count per locally owned vertex (local indexing).
    pub local_triangles: Vec<u64>,
    /// RMA statistics (gets, bytes, modeled communication time).
    pub rma: RankStats,
    /// `C_offsets` statistics, when that cache is enabled.
    pub offsets_cache: Option<CacheStats>,
    /// `C_adj` statistics, when that cache is enabled.
    pub adjacency_cache: Option<CacheStats>,
    /// CPU time of the rank's compute loop, in nanoseconds (per-thread CPU time, so
    /// that oversubscribing the simulator's host does not inflate the measurement).
    pub compute_ns: u64,
    /// Directed edges processed by this rank.
    pub edges_processed: u64,
    /// Edges whose destination lived on another rank (each required a remote read).
    pub remote_edges: u64,
}

/// Runs one rank of the asynchronous distributed LCC computation.
///
/// Remote reads go through the self-healing path: transient failures,
/// corrupted transfers and stragglers past the timeout retry up to
/// [`DistConfig::retry`]'s budget. `Err` means the budget was exhausted —
/// only reachable under an unrecoverable fault plan.
pub fn run_worker(
    rank: usize,
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    config: &DistConfig,
) -> Result<WorkerOutput, RmaError> {
    if config.overlapped() {
        // Pipeline depth or intra-rank threads requested: run the overlapped
        // worker (same output, same error semantics — `tests/equivalence.rs`
        // holds it to this loop's results).
        return super::pipeline::run_worker_overlapped(rank, pg, windows, config);
    }
    let part = &pg.partitions[rank];
    let n_global = pg.global_vertex_count();
    let caches = match &config.cache {
        Some(spec) => spec.resolve(n_global, windows.adjacency_bytes() as u64),
        None => ResolvedCaches {
            offsets: None,
            adjacencies: None,
        },
    };
    let mut reader = RemoteReader::new(windows, &caches, config);
    let mut ep = Endpoint::new(rank, config.ranks, config.network).with_retry(config.retry);
    if let Some(plan) = config.faults {
        ep = ep.with_faults(plan.injector(rank));
    }
    // The intersection inside one rank is sequential: the paper's shared-memory
    // parallelism is a separate axis (Figure 6) from the distributed one, and the
    // distributed experiments map one MPI task per core.
    let intersector =
        ParallelIntersector::new(config.method, 1, usize::MAX).with_cost_model(config.cost_model);
    let direction = pg.direction;

    let mut local_triangles = vec![0u64; part.local_vertex_count()];
    let mut edges_processed = 0u64;
    let mut remote_edges = 0u64;

    // Passive-target access epoch: opened once, closed after the full computation —
    // no synchronization with any other rank in between.
    ep.lock_all();
    let timer = ThreadTimer::start();
    for (local_idx, triangles_slot) in local_triangles.iter_mut().enumerate() {
        let adj_u = part.neighbours_of_local(local_idx);
        let mut triangles = 0u64;
        // `v` walks `adj_u` in sorted order, so the upper-triangle suffix of
        // `adj_u` is just `adj_u[k + 1..]` — the same O(1) incremental offset
        // the shared-memory path uses (`count_closing_at`).
        for (k, &v) in adj_u.iter().enumerate() {
            edges_processed += 1;
            let owner = pg.partitioner.owner(v);
            let count = if owner == rank {
                // Neighbour owned locally: its row is in this rank's partition.
                let v_local = pg.partitioner.local_index(v);
                let adj_v = part.neighbours_of_local(v_local);
                triangles_for_edge(direction, adj_u, adj_v, v, k, &intersector)
            } else {
                remote_edges += 1;
                let v_local = pg.partitioner.local_index(v);
                // One fused protocol round: the remote row is intersected where
                // it lives (cache entry on a hit) or in the same pass that
                // lands it in the cache (miss) — no per-edge buffer is built.
                let compute_start = timer.elapsed_ns();
                let c = match reader.count_closing_remote(
                    &mut ep,
                    owner,
                    v_local,
                    direction,
                    adj_u,
                    v,
                    k,
                    &intersector,
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        // Close the epoch before surfacing the error so the
                        // endpoint is left in a consistent state.
                        ep.unlock_all();
                        return Err(e);
                    }
                };
                if config.double_buffering {
                    // Double buffering: the computation of this edge overlaps the
                    // communication of the next one, so bank its duration as overlap
                    // credit for the endpoint's next get completions. The credit
                    // deliberately covers the whole fused round — cache probe,
                    // landing copy, intersection — because all of it is local CPU
                    // work the paper's scheme hides behind the in-flight get; the
                    // modeled communication cost itself is virtual time and is
                    // never part of the measured duration.
                    ep.note_compute_ns((timer.elapsed_ns() - compute_start) as f64);
                }
                c
            };
            triangles += count;
        }
        *triangles_slot = triangles;
    }
    let compute_ns = timer.elapsed_ns();
    ep.unlock_all();

    Ok(WorkerOutput {
        rank,
        local_triangles,
        offsets_cache: reader.offsets_cache_stats(),
        adjacency_cache: reader.adjacency_cache_stats(),
        rma: ep.into_stats(),
        compute_ns,
        edges_processed,
        remote_edges,
    })
}

fn triangles_for_edge(
    direction: rmatc_graph::types::Direction,
    adj_u: &[rmatc_graph::types::VertexId],
    adj_v: &[rmatc_graph::types::VertexId],
    v: rmatc_graph::types::VertexId,
    neighbour_idx: usize,
    intersector: &ParallelIntersector,
) -> u64 {
    count_closing_at(direction, adj_u, adj_v, v, neighbour_idx, intersector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::config::{CacheSpec, ScoreMode};
    use crate::intersect::{CostModel, IntersectMethod};
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::PartitionScheme;
    use rmatc_graph::reference;
    use rmatc_rma::NetworkModel;

    fn setup(ranks: usize) -> (PartitionedGraph, GraphWindows, DistConfig) {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(5).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
        let windows = GraphWindows::build(&pg);
        let config = DistConfig {
            ranks,
            scheme: PartitionScheme::Block1D,
            method: IntersectMethod::Hybrid,
            cost_model: CostModel::Analytic,
            network: NetworkModel::aries(),
            double_buffering: false,
            cache: None,
            score_mode: ScoreMode::Lru,
            retry: rmatc_rma::RetryPolicy::default(),
            faults: None,
            pipeline_depth: 1,
            intra_threads: 1,
            storage: rmatc_graph::GraphStorage::Plain,
        };
        (pg, windows, config)
    }

    #[test]
    fn single_worker_matches_reference_counts() {
        let (pg, windows, config) = setup(2);
        let g = pg.reassemble();
        let expected = reference::per_vertex_triangles(&g);
        for rank in 0..2 {
            let out = run_worker(rank, &pg, &windows, &config).unwrap();
            for (local_idx, &gv) in pg.partitions[rank].global_ids.iter().enumerate() {
                assert_eq!(
                    out.local_triangles[local_idx], expected[gv as usize],
                    "vertex {gv} on rank {rank}"
                );
            }
        }
    }

    #[test]
    fn compressed_worker_matches_reference_counts() {
        // Same per-vertex counts when every remote row travels compressed —
        // with and without the cache. The worker's own rows stay plain (the
        // partition keeps its CSR); only the windows change representation.
        let (pg, _plain, mut config) = setup(2);
        config.storage = rmatc_graph::GraphStorage::Compressed;
        let windows = GraphWindows::build_with(&pg, rmatc_graph::GraphStorage::Compressed);
        let g = pg.reassemble();
        let expected = reference::per_vertex_triangles(&g);
        for cached in [false, true] {
            config.cache = cached.then(|| CacheSpec::paper(1 << 20));
            for rank in 0..2 {
                let out = run_worker(rank, &pg, &windows, &config).unwrap();
                for (local_idx, &gv) in pg.partitions[rank].global_ids.iter().enumerate() {
                    assert_eq!(
                        out.local_triangles[local_idx], expected[gv as usize],
                        "vertex {gv} on rank {rank} cached={cached}"
                    );
                }
            }
        }
    }

    #[test]
    fn remote_edges_are_counted() {
        let (pg, windows, config) = setup(4);
        let out = run_worker(0, &pg, &windows, &config).unwrap();
        assert!(out.remote_edges > 0);
        assert!(out.remote_edges <= out.edges_processed);
        // Non-cached: every remote edge issues exactly two gets (offsets + list),
        // except edges towards empty rows which issue one.
        assert!(out.rma.gets >= out.remote_edges);
        assert!(out.rma.gets <= 2 * out.remote_edges);
    }

    #[test]
    fn cached_worker_reports_cache_stats() {
        let (pg, windows, mut config) = setup(2);
        config.cache = Some(CacheSpec::paper(1 << 20));
        config.score_mode = ScoreMode::DegreeCentrality;
        let out = run_worker(0, &pg, &windows, &config).unwrap();
        let adj = out.adjacency_cache.expect("adjacency cache enabled");
        assert!(adj.lookups() > 0);
        assert!(out.offsets_cache.is_some());
    }

    #[test]
    fn double_buffering_reduces_charged_comm_time() {
        let (pg, windows, mut config) = setup(2);
        config.network = NetworkModel {
            // Make the modeled network slow enough that compute can hide some of it.
            alpha_ns: 200.0,
            beta_ns_per_byte: 0.05,
            local_read_ns: 10.0,
            injection_scale: 0.0,
        };
        let without = run_worker(0, &pg, &windows, &config).unwrap();
        config.double_buffering = true;
        let with = run_worker(0, &pg, &windows, &config).unwrap();
        assert!(
            with.rma.comm_time_ns <= without.rma.comm_time_ns,
            "overlap credit must never increase charged communication time"
        );
        assert!(with.rma.overlapped_ns > 0.0);
    }
}
