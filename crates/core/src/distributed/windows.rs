//! RMA window construction: every rank exposes its partition's CSR arrays in the two
//! windows of Figure 3 (`w_offsets`, `w_adj`).

use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::VertexId;
use rmatc_rma::Window;

/// The two RMA windows of the distributed algorithm. Cloning is cheap; every rank
/// thread receives a clone during setup (the collective `MPI_Win_create`).
#[derive(Debug, Clone)]
pub struct GraphWindows {
    /// Per-rank `offsets` arrays (`local_vertex_count + 1` u64 entries each).
    pub offsets: Window<u64>,
    /// Per-rank `adjacencies` arrays (global vertex ids).
    pub adjacencies: Window<VertexId>,
}

impl GraphWindows {
    /// Exposes the CSR arrays of every partition.
    pub fn build(pg: &PartitionedGraph) -> Self {
        let offsets_parts: Vec<Vec<u64>> = pg
            .partitions
            .iter()
            .map(|p| p.csr.offsets().to_vec())
            .collect();
        let adj_parts: Vec<Vec<VertexId>> = pg
            .partitions
            .iter()
            .map(|p| p.csr.adjacencies().to_vec())
            .collect();
        Self {
            offsets: Window::from_parts(offsets_parts),
            adjacencies: Window::from_parts(adj_parts),
        }
    }

    /// Total bytes exposed across both windows and all ranks (the distributed CSR
    /// footprint of Table II).
    pub fn total_bytes(&self) -> usize {
        self.offsets.total_bytes() + self.adjacencies.total_bytes()
    }

    /// Bytes of adjacency data exposed (used to express cache capacities as a
    /// fraction of the graph, as Figure 7's x-axis does).
    pub fn adjacency_bytes(&self) -> usize {
        self.adjacencies.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::PartitionScheme;

    #[test]
    fn windows_mirror_partition_arrays() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(1).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 4).unwrap();
        let w = GraphWindows::build(&pg);
        assert_eq!(w.offsets.ranks(), 4);
        assert_eq!(w.adjacencies.ranks(), 4);
        for (rank, part) in pg.partitions.iter().enumerate() {
            assert_eq!(w.offsets.local_part(rank), part.csr.offsets());
            assert_eq!(w.adjacencies.local_part(rank), part.csr.adjacencies());
            assert_eq!(w.offsets.len_of(rank), part.local_vertex_count() + 1);
        }
    }

    #[test]
    fn total_bytes_matches_csr_size() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(2).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
        let w = GraphWindows::build(&pg);
        // Offsets: (n_local + 1) * 8 per rank; adjacencies: m * 4 total.
        let expected_adj = g.edge_count() as usize * 4;
        assert_eq!(w.adjacency_bytes(), expected_adj);
        assert!(w.total_bytes() > expected_adj);
    }
}
