//! RMA window construction: every rank exposes its partition's CSR arrays in the two
//! windows of Figure 3 (`w_offsets`, `w_adj`).
//!
//! With [`GraphStorage::Compressed`] the same two windows carry the
//! delta/varint-compressed form instead ([`rmatc_graph::compressed`]): the
//! offsets window holds per-row *word* ranges into the adjacency window,
//! whose `u32` payload is the concatenated compressed rows rather than raw
//! vertex ids. The two-get protocol is unchanged — one get for the
//! `(start, end)` pair, one for the row — but every transferred and cached
//! byte is compressed.

use rmatc_graph::compressed::CompressedCsr;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::VertexId;
use rmatc_graph::GraphStorage;
use rmatc_rma::Window;

/// The two RMA windows of the distributed algorithm. Cloning is cheap; every rank
/// thread receives a clone during setup (the collective `MPI_Win_create`).
#[derive(Debug, Clone)]
pub struct GraphWindows {
    /// Per-rank `offsets` arrays (`local_vertex_count + 1` u64 entries each).
    /// Plain storage: element offsets into `adjacencies`. Compressed storage:
    /// word offsets into the concatenated compressed rows.
    pub offsets: Window<u64>,
    /// Per-rank `adjacencies` arrays: global vertex ids (plain) or compressed
    /// row words (compressed — `VertexId` and the codec word are both `u32`).
    pub adjacencies: Window<VertexId>,
    /// How the adjacency window's payload is encoded.
    pub storage: GraphStorage,
    /// Bytes the adjacency data would occupy uncompressed (`4 · Σ deg`);
    /// equals the adjacency window size under plain storage.
    pub logical_adjacency_bytes: u64,
}

impl GraphWindows {
    /// Exposes the CSR arrays of every partition as plain rows.
    pub fn build(pg: &PartitionedGraph) -> Self {
        Self::build_with(pg, GraphStorage::Plain)
    }

    /// Exposes every partition's rows in the requested storage mode.
    pub fn build_with(pg: &PartitionedGraph, storage: GraphStorage) -> Self {
        let logical_adjacency_bytes = pg
            .partitions
            .iter()
            .map(|p| p.csr.adjacencies().len() as u64 * 4)
            .sum();
        let (offsets_parts, adj_parts): (Vec<Vec<u64>>, Vec<Vec<VertexId>>) = match storage {
            GraphStorage::Plain => pg
                .partitions
                .iter()
                .map(|p| (p.csr.offsets().to_vec(), p.csr.adjacencies().to_vec()))
                .unzip(),
            GraphStorage::Compressed => pg
                .partitions
                .iter()
                .map(|p| {
                    let c = CompressedCsr::from_csr(&p.csr);
                    (c.row_offsets().to_vec(), c.words().to_vec())
                })
                .unzip(),
        };
        Self {
            offsets: Window::from_parts(offsets_parts),
            adjacencies: Window::from_parts(adj_parts),
            storage,
            logical_adjacency_bytes,
        }
    }

    /// Total bytes exposed across both windows and all ranks (the distributed CSR
    /// footprint of Table II; the *stored* footprint under compressed storage).
    pub fn total_bytes(&self) -> usize {
        self.offsets.total_bytes() + self.adjacencies.total_bytes()
    }

    /// Bytes of adjacency data exposed — stored bytes, so cache capacities
    /// expressed as a fraction of the graph (Figure 7's x-axis) keep meaning
    /// "fraction of what a full cache would have to hold".
    pub fn adjacency_bytes(&self) -> usize {
        self.adjacencies.total_bytes()
    }

    /// Logical-to-stored ratio of the adjacency window (`1.0` under plain
    /// storage).
    pub fn compression_ratio(&self) -> f64 {
        if self.adjacencies.total_bytes() == 0 {
            1.0
        } else {
            self.logical_adjacency_bytes as f64 / self.adjacencies.total_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_graph::compressed::{decode_row, decoded_len};
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::PartitionScheme;

    #[test]
    fn windows_mirror_partition_arrays() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(1).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 4).unwrap();
        let w = GraphWindows::build(&pg);
        assert_eq!(w.offsets.ranks(), 4);
        assert_eq!(w.adjacencies.ranks(), 4);
        for (rank, part) in pg.partitions.iter().enumerate() {
            assert_eq!(w.offsets.local_part(rank), part.csr.offsets());
            assert_eq!(w.adjacencies.local_part(rank), part.csr.adjacencies());
            assert_eq!(w.offsets.len_of(rank), part.local_vertex_count() + 1);
        }
    }

    #[test]
    fn total_bytes_matches_csr_size() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(2).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
        let w = GraphWindows::build(&pg);
        // Offsets: (n_local + 1) * 8 per rank; adjacencies: m * 4 total.
        let expected_adj = g.edge_count() as usize * 4;
        assert_eq!(w.adjacency_bytes(), expected_adj);
        assert_eq!(w.logical_adjacency_bytes, expected_adj as u64);
        assert_eq!(w.compression_ratio(), 1.0);
        assert!(w.total_bytes() > expected_adj);
    }

    #[test]
    fn compressed_windows_round_trip_every_row() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 3).unwrap();
        let w = GraphWindows::build_with(&pg, GraphStorage::Compressed);
        let mut decoded = Vec::new();
        for (rank, part) in pg.partitions.iter().enumerate() {
            let ro = w.offsets.local_part(rank);
            let words = w.adjacencies.local_part(rank);
            assert_eq!(ro.len(), part.local_vertex_count() + 1);
            for local_idx in 0..part.local_vertex_count() {
                let row = &words[ro[local_idx] as usize..ro[local_idx + 1] as usize];
                let expected = part.neighbours_of_local(local_idx);
                assert_eq!(decoded_len(row), expected.len());
                decoded.clear();
                decode_row(row, &mut decoded);
                assert_eq!(decoded, expected, "rank {rank} row {local_idx}");
            }
        }
        // The compressed window must be strictly smaller than the plain one
        // on this skewed graph, and the logical size must match it.
        let plain = GraphWindows::build(&pg);
        assert!(w.adjacency_bytes() < plain.adjacency_bytes());
        assert_eq!(w.logical_adjacency_bytes, plain.logical_adjacency_bytes);
        assert!(w.compression_ratio() > 1.0);
    }
}
