//! Local clustering coefficient formulas (Watts & Strogatz; Eqs. 1 and 2 of the
//! paper), shared by the local and distributed implementations.

pub use rmatc_graph::reference::lcc_from_triangles;
use rmatc_graph::types::Direction;

/// Computes LCC scores for a whole vertex set given per-vertex degrees and closed
/// triplet counts.
pub fn scores_from_counts(direction: Direction, degrees: &[u32], triangles: &[u64]) -> Vec<f64> {
    assert_eq!(degrees.len(), triangles.len());
    degrees
        .iter()
        .zip(triangles.iter())
        .map(|(&d, &t)| lcc_from_triangles(direction, d, t))
        .collect()
}

/// Average LCC over a score vector; empty input gives 0.
pub fn average(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_match_formula() {
        let s = scores_from_counts(Direction::Undirected, &[3, 2, 0], &[2, 1, 0]);
        assert!((s[0] - 2.0 * 2.0 / 6.0).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert_eq!(s[2], 0.0);
    }

    #[test]
    fn directed_scores_have_no_factor_two() {
        let s = scores_from_counts(Direction::Directed, &[3], &[3]);
        assert!((s[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_handles_empty() {
        assert_eq!(average(&[]), 0.0);
        assert!((average(&[0.5, 1.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        scores_from_counts(Direction::Undirected, &[1, 2], &[0]);
    }
}
