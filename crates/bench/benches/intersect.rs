//! Criterion micro-benchmarks of the intersection kernels (Section II-C / III-C):
//! SSI vs binary search vs hybrid on balanced and skewed list pairs, sequential and
//! parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use rand::SeedableRng;
use rmatc_core::intersect::{binary_search_count, ssi_count, IntersectMethod, ParallelIntersector};
use rmatc_core::Intersector;

fn sorted_random(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let balanced_a = sorted_random(&mut rng, 4_096, 1 << 20);
    let balanced_b = sorted_random(&mut rng, 4_096, 1 << 20);
    let skewed_a = sorted_random(&mut rng, 64, 1 << 20);
    let skewed_b = sorted_random(&mut rng, 65_536, 1 << 20);

    let mut group = c.benchmark_group("intersect/balanced");
    group.throughput(Throughput::Elements((balanced_a.len() + balanced_b.len()) as u64));
    group.bench_function("ssi", |b| b.iter(|| ssi_count(&balanced_a, &balanced_b)));
    group.bench_function("binary", |b| b.iter(|| binary_search_count(&balanced_a, &balanced_b)));
    group.bench_function("hybrid", |b| {
        let ix = Intersector::new(IntersectMethod::Hybrid);
        b.iter(|| ix.count(&balanced_a, &balanced_b))
    });
    group.finish();

    let mut group = c.benchmark_group("intersect/skewed");
    group.throughput(Throughput::Elements((skewed_a.len() + skewed_b.len()) as u64));
    group.bench_function("ssi", |b| b.iter(|| ssi_count(&skewed_a, &skewed_b)));
    group.bench_function("binary", |b| b.iter(|| binary_search_count(&skewed_a, &skewed_b)));
    group.bench_function("hybrid", |b| {
        let ix = Intersector::new(IntersectMethod::Hybrid);
        b.iter(|| ix.count(&skewed_a, &skewed_b))
    });
    group.finish();

    let mut group = c.benchmark_group("intersect/parallel");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("hybrid", threads), &threads, |b, &t| {
            let ix = ParallelIntersector::new(IntersectMethod::Hybrid, t, 1_024);
            b.iter(|| ix.count(&balanced_a, &balanced_b))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
