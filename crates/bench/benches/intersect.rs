//! Criterion micro-benchmarks of the intersection kernels (Section II-C / III-C):
//! SSI vs binary search vs SIMD vs galloping vs hybrid on balanced and skewed
//! list pairs, sequential and parallel.
//!
//! Pass `--json <path>` after `--` to emit machine-readable results
//! (`cargo bench --bench intersect -- --json BENCH_intersect.json`); the
//! committed `BENCH_intersect.json` is this suite's perf trajectory record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::Rng;
use rand::SeedableRng;
use rmatc_core::intersect::calibrate::{calibrate, CalibrationConfig};
use rmatc_core::intersect::{
    binary_search_count, compressed_count_closing, compressed_scalar_count, compressed_simd_count,
    compressed_skip_count, galloping_count, simd_count, ssi_count, CostModel, IntersectMethod,
    ParallelIntersector,
};
use rmatc_core::Intersector;
use rmatc_graph::compressed::compress_row;

fn sorted_random(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// All five sequential kernels on one list pair. `short` must be the shorter
/// list (the search-class kernels take it as the key array).
fn bench_pair(c: &mut Criterion, group_name: &str, short: &[u32], long: &[u32], samples: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(samples);
    group.throughput(Throughput::Elements((short.len() + long.len()) as u64));
    group.bench_function("ssi", |b| b.iter(|| ssi_count(short, long)));
    group.bench_function("simd", |b| b.iter(|| simd_count(short, long)));
    group.bench_function("binary", |b| b.iter(|| binary_search_count(short, long)));
    group.bench_function("galloping", |b| b.iter(|| galloping_count(short, long)));
    group.bench_function("hybrid", |b| {
        let ix = Intersector::new(IntersectMethod::Hybrid);
        b.iter(|| ix.count(short, long))
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    // The paper's Table III shapes (4k balanced, 1024x skew) plus the
    // acceptance shapes of this reproduction's kernel upgrades: 64k balanced
    // for the SIMD merge, 1000x skew for galloping.
    let balanced_a = sorted_random(&mut rng, 4_096, 1 << 20);
    let balanced_b = sorted_random(&mut rng, 4_096, 1 << 20);
    let big_a = sorted_random(&mut rng, 65_536, 1 << 22);
    let big_b = sorted_random(&mut rng, 65_536, 1 << 22);
    // Hub-leaf: few keys against a huge row — the |B| >= |A|^2 regime where
    // restart binary search is optimal and the hybrid must pick it.
    let hub_keys = sorted_random(&mut rng, 64, 1 << 20);
    let hub_hay = sorted_random(&mut rng, 65_536, 1 << 20);
    // 1000x skew with enough keys (|B| < |A|^2) — galloping's regime.
    let skew_keys = sorted_random(&mut rng, 4_200, 1 << 25);
    let skew_hay = sorted_random(&mut rng, 4_200_000, 1 << 25);

    bench_pair(c, "intersect/balanced", &balanced_a, &balanced_b, 20);
    bench_pair(c, "intersect/balanced64k", &big_a, &big_b, 20);
    bench_pair(c, "intersect/hubleaf1024x", &hub_keys, &hub_hay, 20);
    bench_pair(c, "intersect/skewed1000x", &skew_keys, &skew_hay, 20);

    let mut group = c.benchmark_group("intersect/parallel");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("hybrid", threads), &threads, |b, &t| {
            let ix = ParallelIntersector::new(IntersectMethod::Hybrid, t, 1_024);
            b.iter(|| ix.count(&big_a, &big_b))
        });
    }
    group.finish();

    // Analytic vs calibrated cost model, same Hybrid method over one mixed
    // sweep of all four shape regimes — the entry `bench-diff` tracks so the
    // two models stay side by side in the history. The profile is fitted on
    // this host at bench startup (quick probe), so the comparison measures
    // what a user actually gets from running `rmatc-calibrate` here.
    let pairs: Vec<(&[u32], &[u32])> = vec![
        (&balanced_a, &balanced_b),
        (&big_a, &big_b),
        (&hub_keys, &hub_hay),
        (&skew_keys, &skew_hay),
    ];
    let profile = calibrate(&CalibrationConfig::quick()).profile;
    eprintln!(
        "fitted cost profile: gallop_exponent = {}, merge_ratio[8..12] = {:?}",
        profile.gallop_exponent,
        &profile.merge_ratio[8..12]
    );
    for (name, &(a, b)) in ["balanced", "balanced64k", "hubleaf1024x", "skewed1000x"]
        .iter()
        .zip(&pairs)
    {
        let (short, long) = (a.len().min(b.len()), a.len().max(b.len()));
        eprintln!(
            "  {name:14} analytic={:?} calibrated={:?}",
            IntersectMethod::Hybrid.resolve(short, long),
            profile.select_kernel(short, long)
        );
    }
    let mut group = c.benchmark_group("intersect/costmodel");
    group.throughput(Throughput::Elements(
        pairs.iter().map(|(a, b)| (a.len() + b.len()) as u64).sum(),
    ));
    for (name, model) in [
        ("hybrid_analytic", CostModel::Analytic),
        ("hybrid_calibrated", CostModel::Calibrated(profile)),
    ] {
        let ix = Intersector::new(IntersectMethod::Hybrid).with_cost_model(model);
        group.bench_function(name, |b| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|(list_a, list_b)| ix.count(list_a, list_b))
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

/// The fused decompress+intersect kernels against the plain-array hybrid on
/// the same shapes: block-at-a-time scalar merge, the SIMD block decoder, and
/// the skip-aware variant that prunes whole blocks via their header maxima.
/// `plain_hybrid` is the reference the gate compares against — fusing the
/// decode must stay within a small constant factor of intersecting the
/// already-decoded rows.
fn bench_compressed(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let shapes: Vec<(&str, Vec<u32>, Vec<u32>)> = vec![
        (
            "intersect/compressed/balanced",
            sorted_random(&mut rng, 4_096, 1 << 20),
            sorted_random(&mut rng, 4_096, 1 << 20),
        ),
        (
            "intersect/compressed/hubleaf1024x",
            sorted_random(&mut rng, 64, 1 << 20),
            sorted_random(&mut rng, 65_536, 1 << 20),
        ),
        (
            "intersect/compressed/skewed64x",
            sorted_random(&mut rng, 1_024, 1 << 22),
            sorted_random(&mut rng, 65_536, 1 << 22),
        ),
    ];
    let model = CostModel::Analytic;
    for (name, a, long) in &shapes {
        let mut row = Vec::new();
        compress_row(long, &mut row);
        c.report_metric(
            name.strip_prefix("intersect/").unwrap_or(name),
            "compression_ratio_x1000",
            (long.len() as f64 * 4.0 / (row.len() as f64 * 4.0) * 1e3).round(),
        );
        let mut group = c.benchmark_group(*name);
        group.sample_size(20);
        group.throughput(Throughput::Elements((a.len() + long.len()) as u64));
        group.bench_function("scalar", |b| {
            b.iter(|| compressed_scalar_count(a, &row, None))
        });
        group.bench_function("simd", |b| b.iter(|| compressed_simd_count(a, &row, None)));
        group.bench_function("skip", |b| b.iter(|| compressed_skip_count(a, &row, None)));
        group.bench_function("auto", |b| {
            b.iter(|| compressed_count_closing(a, &row, None, &model))
        });
        group.bench_function("plain_hybrid", |b| {
            let ix = Intersector::new(IntersectMethod::Hybrid);
            b.iter(|| ix.count(a, long))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels, bench_compressed
}
criterion_main!(benches);
