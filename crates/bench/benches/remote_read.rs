//! Microbenchmark of the distributed remote-adjacency read + intersect path
//! (the two-get protocol of Figure 3 behind `RemoteReader`), isolating what
//! the zero-copy refactor changed: hit-heavy reads served in place from the
//! CLaMPI cache, cold reads landing rows through the fused copy+intersect
//! kernel, and the non-cached transfer-per-edge baseline.
//!
//! Wired into `just bench-smoke` / CI with `--json BENCH_remote_read.json
//! --history bench-history/remote_read.ndjson`, so the `bench-diff` gate
//! watches this path for regressions like it does the kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rmatc_core::distributed::reader::RemoteReader;
use rmatc_core::distributed::worker::run_worker;
use rmatc_core::distributed::{CacheSpec, DistConfig, GraphWindows};
use rmatc_core::intersect::ParallelIntersector;
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};
use rmatc_graph::types::VertexId;
use rmatc_graph::GraphStorage;
use rmatc_rma::Endpoint;

/// One remote edge from rank 0's perspective: the owning vertex's local
/// index, the neighbour's index within its row, the neighbour, and the
/// neighbour's local index on rank 1.
struct RemoteEdge {
    u_local: usize,
    k: usize,
    v: VertexId,
    v_local: usize,
}

fn remote_edges(pg: &PartitionedGraph, limit: usize) -> Vec<RemoteEdge> {
    let part = &pg.partitions[0];
    let mut edges = Vec::new();
    'outer: for u_local in 0..part.local_vertex_count() {
        for (k, &v) in part.neighbours_of_local(u_local).iter().enumerate() {
            if pg.partitioner.owner(v) == 1 {
                edges.push(RemoteEdge {
                    u_local,
                    k,
                    v,
                    v_local: pg.partitioner.local_index(v),
                });
                if edges.len() >= limit {
                    break 'outer;
                }
            }
        }
    }
    edges
}

fn bench_remote_read(c: &mut Criterion) {
    let g = RmatGenerator::paper(10, 16).generate_cleaned(11).into_csr();
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2)
        .expect("two ranks divide the vertex count");
    let windows = GraphWindows::build(&pg);
    let part = &pg.partitions[0];
    let config = DistConfig::non_cached(2).with_degree_scores();
    // Hit-heavy sizing: room for every (start, end) pair and the whole
    // adjacency window, so the measured steady state is all hits. (The
    // paper's `0.8·|V|`-byte offsets budget is deliberately scarce — here it
    // would thrash and measure eviction cost instead of the read path.)
    let offsets_budget = (pg.global_vertex_count() + 2) * 16 * 2;
    let cached_spec = CacheSpec {
        total_bytes: offsets_budget + 2 * windows.adjacency_bytes(),
        offsets_bytes: Some(offsets_budget),
        cache_offsets: true,
        cache_adjacencies: true,
        adaptive: false,
        policy: Default::default(),
    };
    let edges = remote_edges(&pg, 2_048);
    assert!(!edges.is_empty(), "the partition must have remote edges");
    let intersector = ParallelIntersector::new(config.method, 1, usize::MAX);
    let elements: u64 = edges
        .iter()
        .map(|e| 2 + pg.partitions[1].neighbours_of_local(e.v_local).len() as u64)
        .sum();

    let run = |reader: &mut RemoteReader, ep: &mut Endpoint| -> u64 {
        let mut total = 0;
        for e in &edges {
            let adj_u = part.neighbours_of_local(e.u_local);
            total += reader
                .count_closing_remote(
                    ep,
                    1,
                    e.v_local,
                    pg.direction,
                    adj_u,
                    e.v,
                    e.k,
                    &intersector,
                )
                .expect("no faults injected");
        }
        total
    };
    let make_reader = |spec: Option<CacheSpec>| -> RemoteReader {
        match spec {
            Some(spec) => {
                let caches =
                    spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
                RemoteReader::new(&windows, &caches, &config)
            }
            None => RemoteReader::non_cached(&windows, &config),
        }
    };

    // Compressed storage over the same protocol: the adjacency window
    // carries delta/varint rows, hits decode-intersect in place and cold
    // misses land compressed rows through the fused transfer kernel.
    let cwindows = GraphWindows::build_with(&pg, GraphStorage::Compressed);
    let cconfig = DistConfig::non_cached(2)
        .with_degree_scores()
        .with_storage(GraphStorage::Compressed);
    let compressed_spec = CacheSpec {
        total_bytes: offsets_budget + 2 * cwindows.adjacency_bytes(),
        offsets_bytes: Some(offsets_budget),
        cache_offsets: true,
        cache_adjacencies: true,
        adaptive: false,
        policy: Default::default(),
    };
    let make_compressed_reader = || -> RemoteReader {
        let caches =
            compressed_spec.resolve(pg.global_vertex_count(), cwindows.adjacency_bytes() as u64);
        RemoteReader::new(&cwindows, &caches, &cconfig)
    };

    // Deterministic metric rows first (recorded even when a `--filter` skips
    // the timing functions): how much smaller the wire/stored footprint is,
    // and stored bytes per adjacency read, from one warmed pass.
    {
        let mut reader = make_compressed_reader();
        let mut ep = Endpoint::new(0, 2, cconfig.network);
        ep.lock_all();
        let _warm = run(&mut reader, &mut ep);
        let stats = reader.adjacency_cache_stats().expect("adjacency cache on");
        c.report_metric(
            "remote_read",
            "compressed/compression_ratio_x1000",
            (stats.compression_ratio() * 1e3).round(),
        );
        c.report_metric(
            "remote_read",
            "compressed/stored_bytes_per_lookup",
            (stats.stored_bytes as f64 / stats.lookups().max(1) as f64).round(),
        );
    }

    let mut group = c.benchmark_group("remote_read");
    group.throughput(Throughput::Elements(elements));
    group.sample_size(20);

    // Hit-heavy compressed reads: the gate watches this against `cached_hit`
    // — the in-place fused decode must not regress the zero-copy hit path.
    group.bench_function("compressed_hit", |b| {
        let mut reader = make_compressed_reader();
        let mut ep = Endpoint::new(0, 2, cconfig.network);
        ep.lock_all();
        let _warm = run(&mut reader, &mut ep);
        b.iter(|| run(&mut reader, &mut ep))
    });

    // Cold compressed misses: every read transfers and admits a compressed
    // row, decode fused into the intersection.
    group.bench_function("compressed_cold", |b| {
        let mut ep = Endpoint::new(0, 2, cconfig.network);
        ep.lock_all();
        b.iter_batched(
            make_compressed_reader,
            |mut reader| run(&mut reader, &mut ep),
            criterion::BatchSize::LargeInput,
        )
    });

    // Hit-heavy: the cache holds the whole remote partition, so after one
    // warm pass every read is served in place — the zero-copy win.
    group.bench_function("cached_hit", |b| {
        let mut reader = make_reader(Some(cached_spec));
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        let _warm = run(&mut reader, &mut ep);
        b.iter(|| run(&mut reader, &mut ep))
    });

    // Cold: every read misses and lands its row through the fused
    // copy+intersect transfer.
    group.bench_function("cached_cold", |b| {
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        b.iter_batched(
            || make_reader(Some(cached_spec)),
            |mut reader| run(&mut reader, &mut ep),
            criterion::BatchSize::LargeInput,
        )
    });

    // Baseline: no cache, one fused transfer per edge.
    group.bench_function("non_cached", |b| {
        let mut reader = make_reader(None);
        let mut ep = Endpoint::new(0, 2, config.network);
        ep.lock_all();
        b.iter(|| run(&mut reader, &mut ep))
    });

    // The self-healing path with injection disabled: an explicit retry policy
    // but no `FaultInjector`, so no checksums are computed and no fault is
    // ever rolled. Guards the robustness layer's promise that the fault-off
    // read path costs nothing over `non_cached`.
    group.bench_function("faulty_path_off", |b| {
        let mut reader = make_reader(None);
        let mut ep =
            Endpoint::new(0, 2, config.network).with_retry(rmatc_rma::RetryPolicy::default());
        ep.lock_all();
        b.iter(|| run(&mut reader, &mut ep))
    });

    group.finish();
}

/// The overlap benches: a full rank-0 LCC worker pass under latency
/// *injection* (`NetworkModel::with_injection`), so the modeled Aries α/β
/// really is spun for in wall time. The non-overlapped loop pays every spin
/// back-to-back; the pipelined loop issues gets early enough that their
/// modeled latency elapses while it computes, and the intra-rank threads add
/// the second overlap axis (Figure 6). Run under `RMATC_THREADS≥2` (the
/// justfile does) so the thread variants actually get a pool to spread over.
fn bench_overlap(c: &mut Criterion) {
    let g = RmatGenerator::paper(8, 16).generate_cleaned(11).into_csr();
    let mut config = DistConfig::non_cached(2).with_degree_scores();
    config.network = rmatc_rma::NetworkModel::aries().with_injection(0.2);
    let pg = PartitionedGraph::from_global(&g, config.scheme, config.ranks)
        .expect("two ranks divide the vertex count");
    let windows = GraphWindows::build(&pg);

    let mut group = c.benchmark_group("remote_read");
    group.sample_size(20);

    // Baseline: the sequential worker waits out every injected latency.
    group.bench_function("non_overlapped_injected", |b| {
        b.iter(|| run_worker(0, &pg, &windows, &config).expect("no faults injected"))
    });

    // The acceptance configuration: pipeline depth 8 × 2 intra-rank threads.
    group.bench_function("pipelined", |b| {
        let cfg = config.with_pipeline_depth(8).with_intra_threads(2);
        b.iter(|| run_worker(0, &pg, &windows, &cfg).expect("no faults injected"))
    });

    // Intra-rank scaling entry: same depth, twice the threads.
    group.bench_function("pipelined_threads4", |b| {
        let cfg = config.with_pipeline_depth(8).with_intra_threads(4);
        b.iter(|| run_worker(0, &pg, &windows, &cfg).expect("no faults injected"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_remote_read, bench_overlap
}
criterion_main!(benches);
