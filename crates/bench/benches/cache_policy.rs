//! Eviction-policy shootout: every [`EvictionPolicyKind`] replays the same
//! skewed, hub-heavy adjacency-access trace through an identically sized
//! CLaMPI instance, so the recorded hit rates and byte churn differ only by
//! victim selection.
//!
//! The trace models the LCC access pattern that motivates the paper's cache
//! (§IV): remote row reads are degree-weighted (hubs are re-read once per
//! incident edge), interleaved with full sweeps over the vertex set (every
//! rank eventually walks all of its edge endpoints). Sweeps are exactly the
//! adversary of recency-only eviction — each one flushes the hot hub set out
//! of an LRU-like cache — while frequency/cost-aware policies (LFU, GDSF)
//! keep the hubs resident. `paper_score` runs in its default configuration
//! (no application scores, the degenerate LRU+positional rule); the
//! `paper_score_degree` row adds degree scores, the paper's §III-B refinement,
//! for context.
//!
//! Besides replay timings, the bench records deterministic *metric* rows via
//! `report_metric` — `missrate_ppm` (cache miss rate, parts per million) and
//! `net_bytes_per_lookup` (network bytes fetched per access) — which land in
//! `BENCH_cache_policy.json` / `bench-history/cache_policy.ndjson` and are
//! gated by `bench-diff` at the default tight threshold: the trace and the
//! policies are deterministic, so any drift is a behaviour change.
//!
//! The bench also hard-asserts the headline claim the history records: on
//! this trace GDSF's hit rate is at least the default paper policy's.

use criterion::{criterion_group, criterion_main, Criterion};
use rmatc_clampi::{Clampi, ClampiConfig, EntryKey, EvictionPolicyKind};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::CsrGraph;
use rmatc_rma::WindowId;

/// Accesses between full vertex sweeps.
const HOT_DRAWS_PER_PHASE: usize = 3_000;
/// Number of (hot phase, sweep) rounds in the trace.
const ROUNDS: usize = 8;

/// One access: the vertex whose adjacency row is read.
type Trace = Vec<u32>;

/// Degree-weighted hot draws interleaved with full sequential sweeps,
/// deterministic via xorshift64*. A uniformly random adjacency-array
/// position names its target vertex, so hubs are drawn in proportion to
/// in-degree; taking the higher-degree of two such draws squares the skew
/// (power-of-two-choices), concentrating the hot set the way the LCC's
/// degree-ordered remote reads concentrate on hubs.
fn build_trace(g: &CsrGraph) -> Trace {
    let adj = g.adjacencies();
    let n = g.vertex_count() as u32;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut trace = Vec::with_capacity(ROUNDS * (HOT_DRAWS_PER_PHASE + n as usize));
    for _ in 0..ROUNDS {
        for _ in 0..HOT_DRAWS_PER_PHASE {
            let a = adj[(next() % adj.len() as u64) as usize];
            let b = adj[(next() % adj.len() as u64) as usize];
            trace.push(if g.degree(a) >= g.degree(b) { a } else { b });
        }
        trace.extend(0..n);
    }
    trace
}

/// Replays the trace through one cache: lookup, and on miss insert the row
/// with the vertex degree as its user score (only `paper_score` under
/// application scores reads it). Returns the cache for its final stats.
fn replay(g: &CsrGraph, trace: &Trace, config: ClampiConfig) -> Clampi<u32> {
    let mut cache: Clampi<u32> = Clampi::new(config);
    for &v in trace {
        let row = g.neighbours(v);
        let key = EntryKey::new(
            WindowId(0),
            1,
            g.offsets()[v as usize] as usize * 4,
            row.len(),
        );
        if cache.lookup(key).is_none() {
            cache.insert(key, row.to_vec(), g.degree(v) as f64);
        }
    }
    cache
}

/// The shootout contenders: a display name plus the cache configuration.
fn contenders(capacity: usize, slots: usize) -> Vec<(&'static str, ClampiConfig)> {
    let base = |kind| ClampiConfig::always_cache(capacity, slots).with_policy(kind);
    let mut list: Vec<(&'static str, ClampiConfig)> = EvictionPolicyKind::ALL
        .iter()
        .map(|&kind| (kind.name(), base(kind)))
        .collect();
    // The paper's §III-B refinement: degree scores steering PaperScore.
    list.push((
        "paper_score_degree",
        base(EvictionPolicyKind::PaperScore).with_application_scores(),
    ));
    list
}

fn bench_cache_policy(c: &mut Criterion) {
    let g = RmatGenerator::paper(10, 12).generate_cleaned(42).into_csr();
    let trace = build_trace(&g);
    // Half the adjacency bytes: the sweeps cannot fit (so recency-only
    // eviction cycles the whole cache every round), but the concentrated hub
    // set can stay resident for a policy that chooses to keep it.
    let capacity = (g.edge_count() as usize * 4) / 2;
    let slots = 1 << 10;

    // Deterministic metric rows first, so they are recorded even when the
    // timing filter skips the replay functions.
    let mut hit_rates = std::collections::BTreeMap::new();
    for (name, config) in contenders(capacity, slots) {
        let cache = replay(&g, &trace, config);
        let stats = cache.stats();
        hit_rates.insert(name, stats.hit_rate());
        c.report_metric(
            "cache_policy",
            format!("missrate_ppm/{name}"),
            (stats.miss_rate() * 1e6).round(),
        );
        c.report_metric(
            "cache_policy",
            format!("net_bytes_per_lookup/{name}"),
            (stats.bytes_from_network as f64 / stats.lookups() as f64).round(),
        );
    }

    // The claim the history file records: on a hub-heavy trace with sweeps,
    // cost/frequency-aware GDSF retains the hot set at least as well as the
    // default (score-less, LRU-like) paper policy.
    let (gdsf, paper) = (hit_rates["gdsf"], hit_rates["paper_score"]);
    assert!(
        gdsf >= paper,
        "GDSF hit rate ({gdsf:.4}) fell below default paper_score ({paper:.4})"
    );

    let mut group = c.benchmark_group("cache_policy");
    group.sample_size(10);
    for (name, config) in contenders(capacity, slots) {
        group.bench_function(format!("replay/{name}"), |b| {
            b.iter_batched(
                || config,
                |config| replay(&g, &trace, config),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_policy
}
criterion_main!(benches);
