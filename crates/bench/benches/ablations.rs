//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! the hybrid intersection rule vs a fixed kernel, degree-centrality scores vs plain
//! LRU under cache pressure, double buffering on vs off, and block vs cyclic 1D
//! partitioning.

use criterion::{criterion_group, criterion_main, Criterion};
use rmatc_core::{
    CacheSpec, DistConfig, DistLcc, IntersectMethod, LocalConfig, LocalLcc, ScoreMode,
};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::partition::PartitionScheme;

fn bench_ablations(c: &mut Criterion) {
    let g = RmatGenerator::paper(10, 16).generate_cleaned(3).into_csr();
    let adj_bytes = g.edge_count() as usize * 4;

    // 1. Hybrid decision rule (Eq. 3) vs fixed kernels on the local computation.
    let mut group = c.benchmark_group("ablation/intersection_rule");
    group.sample_size(10);
    for method in IntersectMethod::all() {
        group.bench_function(method.label(), |b| {
            let runner = LocalLcc::new(LocalConfig::sequential().with_method(method));
            b.iter(|| runner.run(&g))
        });
    }
    group.finish();

    // 2. Eviction scores under pressure: LRU/positional vs degree centrality.
    let mut group = c.benchmark_group("ablation/eviction_scores");
    group.sample_size(10);
    let pressure_cache = CacheSpec::adjacencies_only(adj_bytes / 8);
    for (label, mode) in [
        ("lru_positional", ScoreMode::Lru),
        ("degree", ScoreMode::DegreeCentrality),
    ] {
        group.bench_function(label, |b| {
            let mut cfg = DistConfig::non_cached(4);
            cfg.cache = Some(pressure_cache);
            cfg.score_mode = mode;
            let runner = DistLcc::new(cfg);
            b.iter(|| runner.run(&g))
        });
    }
    group.finish();

    // 3. Double buffering on/off (affects the modeled comm time, not the wall time,
    //    but exercises the overlap-credit code path).
    let mut group = c.benchmark_group("ablation/double_buffering");
    group.sample_size(10);
    for (label, db) in [("on", true), ("off", false)] {
        group.bench_function(label, |b| {
            let mut cfg = DistConfig::non_cached(4);
            cfg.double_buffering = db;
            let runner = DistLcc::new(cfg);
            b.iter(|| runner.run(&g))
        });
    }
    group.finish();

    // 4. Block vs cyclic 1D distribution.
    let mut group = c.benchmark_group("ablation/partitioning");
    group.sample_size(10);
    for (label, scheme) in [
        ("block", PartitionScheme::Block1D),
        ("cyclic", PartitionScheme::Cyclic),
    ] {
        group.bench_function(label, |b| {
            let mut cfg = DistConfig::non_cached(4);
            cfg.scheme = scheme;
            let runner = DistLcc::new(cfg);
            b.iter(|| runner.run(&g))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
