//! Criterion benchmarks of the shared-memory LCC/TC kernel (the Table III / Figure 6
//! code path): edge-centric counting with each intersection method, and the
//! Figure 6-style comparison of the three parallelization strategies
//! (intersection-, vertex- and edge-parallel outer loops).
//!
//! Pass `--json <path>` after `--` to emit machine-readable results
//! (`cargo bench --bench local_lcc -- --json BENCH_local_lcc.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmatc_core::{IntersectMethod, LocalConfig, LocalLcc, LocalParallelism, RangeSchedule};
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};

fn bench_local(c: &mut Criterion) {
    let rmat = RmatGenerator::paper(11, 16).generate_cleaned(1).into_csr();
    let social = Dataset::Orkut.generate(DatasetScale::Tiny, 1);

    let mut group = c.benchmark_group("local_lcc");
    group.throughput(Throughput::Elements(rmat.edge_count()));
    for method in IntersectMethod::all() {
        group.bench_with_input(
            BenchmarkId::new("rmat_s11_ef16", method.label()),
            &method,
            |b, &m| {
                let runner = LocalLcc::new(LocalConfig::sequential().with_method(m));
                b.iter(|| runner.run(&rmat))
            },
        );
    }
    group.throughput(Throughput::Elements(social.edge_count()));
    for method in IntersectMethod::all() {
        group.bench_with_input(
            BenchmarkId::new("orkut_standin", method.label()),
            &method,
            |b, &m| {
                let runner = LocalLcc::new(LocalConfig::sequential().with_method(m));
                b.iter(|| runner.run(&social))
            },
        );
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let rmat = RmatGenerator::paper(11, 16).generate_cleaned(1).into_csr();
    let modes = [
        ("intersection", LocalParallelism::IntersectionParallel),
        ("vertex", LocalParallelism::VertexParallel),
        ("edge", LocalParallelism::EdgeParallel),
    ];
    let mut group = c.benchmark_group("local_lcc/parallelism");
    group.throughput(Throughput::Elements(rmat.edge_count()));
    group.bench_function("sequential", |b| {
        let runner = LocalLcc::new(LocalConfig::sequential());
        b.iter(|| runner.run(&rmat))
    });
    for (label, mode) in modes {
        for threads in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &t| {
                let runner = LocalLcc::new(LocalConfig::parallel(t).with_parallelism(mode));
                b.iter(|| runner.run(&rmat))
            });
        }
    }
    group.finish();
}

/// Degree-weighted vs static chunking on a skewed R-MAT graph: the hub-heavy
/// degree distribution is exactly where equal-count ranges go wrong, so the
/// degree-weighted schedule must be at least as fast (it is strictly faster
/// the more workers the host has; on a single-core host the two coincide).
fn bench_schedule(c: &mut Criterion) {
    let skewed = RmatGenerator::paper(11, 16).generate_cleaned(1).into_csr();
    let threads = 4usize;
    if rayon::effective_parallelism() <= 1 {
        // `effective_schedule` falls back to static boundaries when regions
        // run inline, so on this host the two series measure the same code
        // and differ only by noise. The multi-core CI runs accumulate the
        // real comparison in bench-history; the deterministic balance
        // property is asserted by `degree_weighted_chunks_balance_edge_mass`
        // in `rmatc-core`.
        println!(
            "note: single-core host — weighted and static schedules coincide here; \
             the scheduling win needs a multi-core run to show up"
        );
    }
    let mut group = c.benchmark_group("local_lcc/schedule");
    // The schedules differ by ~the noise floor on few-core hosts; extra
    // samples keep the medians honest for the bench-history gate.
    group.sample_size(40);
    group.throughput(Throughput::Elements(skewed.edge_count()));
    let modes = [
        ("vertex", LocalParallelism::VertexParallel),
        ("edge", LocalParallelism::EdgeParallel),
    ];
    let schedules = [
        ("static", RangeSchedule::Static),
        ("weighted", RangeSchedule::DegreeWeighted),
    ];
    for (mode_label, mode) in modes {
        for (schedule_label, schedule) in schedules {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode_label}_{schedule_label}"), threads),
                &threads,
                |b, &t| {
                    let config = LocalConfig::vertex_parallel(t)
                        .with_parallelism(mode)
                        .with_schedule(schedule);
                    let runner = LocalLcc::new(config);
                    b.iter(|| runner.run(&skewed))
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local, bench_parallelism, bench_schedule
}
criterion_main!(benches);
