//! Criterion benchmarks of the shared-memory LCC/TC kernel (the Table III / Figure 6
//! code path): edge-centric counting with each intersection method, and the
//! Figure 6-style comparison of the three parallelization strategies
//! (intersection-, vertex- and edge-parallel outer loops).
//!
//! Pass `--json <path>` after `--` to emit machine-readable results
//! (`cargo bench --bench local_lcc -- --json BENCH_local_lcc.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmatc_core::{IntersectMethod, LocalConfig, LocalLcc, LocalParallelism};
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};

fn bench_local(c: &mut Criterion) {
    let rmat = RmatGenerator::paper(11, 16).generate_cleaned(1).into_csr();
    let social = Dataset::Orkut.generate(DatasetScale::Tiny, 1);

    let mut group = c.benchmark_group("local_lcc");
    group.throughput(Throughput::Elements(rmat.edge_count()));
    for method in IntersectMethod::all() {
        group.bench_with_input(
            BenchmarkId::new("rmat_s11_ef16", method.label()),
            &method,
            |b, &m| {
                let runner = LocalLcc::new(LocalConfig::sequential().with_method(m));
                b.iter(|| runner.run(&rmat))
            },
        );
    }
    group.throughput(Throughput::Elements(social.edge_count()));
    for method in IntersectMethod::all() {
        group.bench_with_input(
            BenchmarkId::new("orkut_standin", method.label()),
            &method,
            |b, &m| {
                let runner = LocalLcc::new(LocalConfig::sequential().with_method(m));
                b.iter(|| runner.run(&social))
            },
        );
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let rmat = RmatGenerator::paper(11, 16).generate_cleaned(1).into_csr();
    let modes = [
        ("intersection", LocalParallelism::IntersectionParallel),
        ("vertex", LocalParallelism::VertexParallel),
        ("edge", LocalParallelism::EdgeParallel),
    ];
    let mut group = c.benchmark_group("local_lcc/parallelism");
    group.throughput(Throughput::Elements(rmat.edge_count()));
    group.bench_function("sequential", |b| {
        let runner = LocalLcc::new(LocalConfig::sequential());
        b.iter(|| runner.run(&rmat))
    });
    for (label, mode) in modes {
        for threads in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &t| {
                let runner = LocalLcc::new(LocalConfig::parallel(t).with_parallelism(mode));
                b.iter(|| runner.run(&rmat))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local, bench_parallelism
}
criterion_main!(benches);
