//! Criterion benchmarks of the shared-memory LCC/TC kernel (the Table III / Figure 6
//! code path): edge-centric counting with each intersection method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmatc_core::{IntersectMethod, LocalConfig, LocalLcc};
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};

fn bench_local(c: &mut Criterion) {
    let rmat = RmatGenerator::paper(11, 16).generate_cleaned(1).into_csr();
    let social = Dataset::Orkut.generate(DatasetScale::Tiny, 1);

    let mut group = c.benchmark_group("local_lcc");
    group.throughput(Throughput::Elements(rmat.edge_count()));
    for method in IntersectMethod::all() {
        group.bench_with_input(
            BenchmarkId::new("rmat_s11_ef16", method.label()),
            &method,
            |b, &m| {
                let runner = LocalLcc::new(LocalConfig::sequential().with_method(m));
                b.iter(|| runner.run(&rmat))
            },
        );
    }
    group.throughput(Throughput::Elements(social.edge_count()));
    for method in IntersectMethod::all() {
        group.bench_with_input(
            BenchmarkId::new("orkut_standin", method.label()),
            &method,
            |b, &m| {
                let runner = LocalLcc::new(LocalConfig::sequential().with_method(m));
                b.iter(|| runner.run(&social))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_local
}
criterion_main!(benches);
