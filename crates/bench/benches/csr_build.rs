//! Criterion micro-benchmarks of the graph substrate: CSR construction, the
//! cleaning pipeline and 1D partitioning.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};
use rmatc_graph::types::Direction;
use rmatc_graph::CsrGraph;

fn bench_graph(c: &mut Criterion) {
    let gen = RmatGenerator::paper(13, 16);
    let raw = gen.generate(1);
    let edges = raw.edges().to_vec();
    let cleaned = gen.generate_cleaned(1);
    let csr = cleaned.clone().into_csr();

    let mut group = c.benchmark_group("graph");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("csr_from_edges", |b| {
        b.iter(|| CsrGraph::from_edges(raw.vertex_count(), &edges, Direction::Undirected))
    });
    group.bench_function("clean_pipeline", |b| {
        b.iter_batched(
            || gen.generate(1),
            |mut el| {
                el.clean();
                el
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("partition_1d_8", |b| {
        b.iter(|| PartitionedGraph::from_global(&csr, PartitionScheme::Block1D, 8).unwrap())
    });
    group.bench_function("partition_cyclic_8", |b| {
        b.iter(|| PartitionedGraph::from_global(&csr, PartitionScheme::Cyclic, 8).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph
}
criterion_main!(benches);
