//! Load generator for the resident query service ([`rmatc_core::service`]):
//! a skewed, hub-heavy query mix driven at volume through one long-lived
//! [`QueryEngine`], the serving workload the eviction-policy and compression
//! work was built to win on.
//!
//! The mix draws pair queries degree-weighted with power-of-two-choices (a
//! uniformly random adjacency position names its row, the higher-degree of
//! two draws wins), so hub rows recur across and *within* batch windows —
//! exactly what the batch planner's sort/dedup and the warm CLaMPI cache
//! exploit.
//!
//! Deterministic metric rows land in `BENCH_service.json` /
//! `bench-history/service.ndjson`:
//!
//! * `dedup_ratio_x1000` — requested reads per unique fetch inside batch
//!   windows (×1000); gated at the tight default threshold, and hard-asserted
//!   `> 1.0` here: the hub-heavy mix must produce overlapping reads.
//! * `missrate_ppm` — adjacency-cache miss rate over the whole stream; tight
//!   default gate (the stream and the cache are deterministic).
//! * `p50_ns` / `p99_ns` — virtual-time latency percentiles. The virtual
//!   clock includes *measured* compute time, so these get wide `bench-diff`
//!   thresholds like the wall-time rows.

use criterion::{criterion_group, criterion_main, Criterion};
use rmatc_core::{DistConfig, Query, QueryEngine, ServiceConfig};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::CsrGraph;

/// Queries in the deterministic metric drive.
const METRIC_QUERIES: usize = 4_000;
/// Queries per timed drive iteration (smaller: it runs `sample_size` times).
const TIMED_QUERIES: usize = 1_000;
const RANKS: usize = 4;
const BATCH: usize = 64;

/// The hub-heavy mix: 40% Jaccard and 20% common-neighbour pair queries on
/// degree-weighted edges (power-of-two-choices on the source row), 20% top-k
/// around hub sources, 20% LCC of uniform vertices. Deterministic xorshift64*.
fn hub_mix(g: &CsrGraph, count: usize) -> Vec<Query> {
    let adj = g.adjacencies();
    let offsets = g.offsets();
    let n = g.vertex_count() as u64;
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let hub_edge = move |next: &mut dyn FnMut() -> u64| {
        let pa = next() % adj.len() as u64;
        let pb = next() % adj.len() as u64;
        let src = |pos: u64| (offsets.partition_point(|&o| o <= pos) - 1) as u32;
        let (ua, ub) = (src(pa), src(pb));
        if g.degree(ua) >= g.degree(ub) {
            (ua, adj[pa as usize])
        } else {
            (ub, adj[pb as usize])
        }
    };
    (0..count)
        .map(|_| match next() % 10 {
            0..=3 => {
                let (u, v) = hub_edge(&mut next);
                Query::Jaccard { u, v }
            }
            4 | 5 => {
                let (u, v) = hub_edge(&mut next);
                Query::CommonNeighbors { u, v }
            }
            6 | 7 => {
                let (u, _) = hub_edge(&mut next);
                Query::TopK {
                    u,
                    k: (next() % 8) as usize,
                }
            }
            _ => Query::LccOf {
                v: (next() % n) as u32,
            },
        })
        .collect()
}

fn engine_config(g: &CsrGraph) -> ServiceConfig {
    // Half the CSR footprint: big enough to keep the hub set resident, small
    // enough that eviction actually runs.
    let dist = DistConfig::cached(RANKS, (g.csr_size_bytes() / 2) as usize).with_degree_scores();
    ServiceConfig::new(dist)
        .with_batch_size(BATCH)
        .with_queue_capacity(BATCH)
}

/// Drives `queries` through a fresh resident engine in full batch windows.
fn drive(g: &CsrGraph, queries: &[Query]) -> QueryEngine {
    let mut engine = QueryEngine::new(g, engine_config(g));
    for chunk in queries.chunks(BATCH) {
        for &q in chunk {
            engine.submit(q).expect("chunks stay within capacity");
        }
        let responses = engine.drain();
        assert!(responses.iter().all(|r| r.result.is_ok()));
    }
    engine
}

fn bench_service(c: &mut Criterion) {
    let g = RmatGenerator::paper(10, 12).generate_cleaned(42).into_csr();

    // Deterministic metric drive first (recorded even when the timing filter
    // skips the timed functions).
    let engine = drive(&g, &hub_mix(&g, METRIC_QUERIES));
    let stats = engine.stats();
    assert_eq!(stats.completed, METRIC_QUERIES as u64);
    assert!(stats.reconciles());
    let dedup = stats.dedup_ratio();
    assert!(
        dedup > 1.0,
        "hub-heavy batches must contain overlapping reads (got {dedup:.3})"
    );
    c.report_metric("service", "dedup_ratio_x1000", (dedup * 1000.0).round());
    c.report_metric(
        "service",
        "missrate_ppm",
        stats.adjacency_cache.as_ref().unwrap().miss_rate_ppm() as f64,
    );
    c.report_metric("service", "p50_ns", stats.virtual_latency.p50_ns.round());
    c.report_metric("service", "p99_ns", stats.virtual_latency.p99_ns.round());

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    let timed_mix = hub_mix(&g, TIMED_QUERIES);
    group.bench_function("drive/hub_mix", |b| b.iter(|| drive(&g, &timed_mix)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_service
}
criterion_main!(benches);
