//! Criterion micro-benchmarks of the CLaMPI reproduction: hit path, miss+insert
//! path, eviction under pressure, and the two scoring policies.

use criterion::{criterion_group, criterion_main, Criterion};
use rmatc_clampi::{Clampi, ClampiConfig, EntryKey};
use rmatc_rma::WindowId;

fn key(i: usize) -> EntryKey {
    EntryKey::new(WindowId(0), 1, i * 8, 8)
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("clampi");

    group.bench_function("hit", |b| {
        let mut cache: Clampi<u32> = Clampi::new(ClampiConfig::always_cache(1 << 20, 4_096));
        cache.insert(key(0), vec![7u32; 8], 0.0);
        b.iter(|| cache.lookup(key(0)).is_some())
    });

    group.bench_function("miss_insert", |b| {
        let mut cache: Clampi<u32> = Clampi::new(ClampiConfig::always_cache(64 << 20, 1 << 16));
        let mut i = 0usize;
        b.iter(|| {
            let k = key(i);
            i += 1;
            if cache.lookup(k).is_none() {
                cache.insert(k, vec![0u32; 8], 0.0);
            }
        })
    });

    group.bench_function("evict_lru", |b| {
        // Capacity for only 64 entries: every insert beyond that evicts.
        let mut cache: Clampi<u32> = Clampi::new(ClampiConfig::always_cache(64 * 32, 4_096));
        let mut i = 0usize;
        b.iter(|| {
            let k = key(i);
            i += 1;
            if cache.lookup(k).is_none() {
                cache.insert(k, vec![0u32; 8], 0.0);
            }
        })
    });

    group.bench_function("evict_degree_scores", |b| {
        let cfg = ClampiConfig::always_cache(64 * 32, 4_096).with_application_scores();
        let mut cache: Clampi<u32> = Clampi::new(cfg);
        let mut i = 0usize;
        b.iter(|| {
            let k = key(i);
            i += 1;
            if cache.lookup(k).is_none() {
                cache.insert(k, vec![0u32; 8], (i % 100) as f64);
            }
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache
}
criterion_main!(benches);
