//! Criterion benchmarks of the distributed runners (the Figure 9 code path) at small
//! rank counts: asynchronous LCC with and without caching, and the TriC baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmatc_core::{DistConfig, DistLcc};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_tric::{Tric, TricConfig};

fn bench_distributed(c: &mut Criterion) {
    let g = RmatGenerator::paper(10, 16).generate_cleaned(1).into_csr();
    let cache_budget = g.csr_size_bytes() as usize / 2;

    let mut group = c.benchmark_group("distributed");
    group.throughput(Throughput::Elements(g.edge_count()));
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("async_non_cached", ranks),
            &ranks,
            |b, &r| {
                let runner = DistLcc::new(DistConfig::non_cached(r));
                b.iter(|| runner.run(&g))
            },
        );
        group.bench_with_input(BenchmarkId::new("async_cached", ranks), &ranks, |b, &r| {
            let runner = DistLcc::new(DistConfig::cached(r, cache_budget).with_degree_scores());
            b.iter(|| runner.run(&g))
        });
        group.bench_with_input(BenchmarkId::new("tric", ranks), &ranks, |b, &r| {
            let runner = Tric::new(TricConfig::plain(r));
            b.iter(|| runner.run(&g))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_distributed
}
criterion_main!(benches);
