//! Plain-text table formatting for the experiment binaries.

/// A simple aligned text table with a title, a header row and data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; the number of cells must match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator and two rows after the title line.
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("Empty", &["col"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 3);
    }
}
