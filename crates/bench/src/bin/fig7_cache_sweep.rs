//! Figure 7 — cache behaviour as a function of the cache size, for an R-MAT graph
//! with 2^20 vertices and 2^24 edges distributed over two compute nodes.
//!
//! The paper enables caching on one window at a time and sweeps the cache size:
//! the offsets cache shows a *linear* relationship between size and miss rate
//! (fixed-size entries, reuse independent of entry size), while the adjacency cache
//! shows a *power-law* relationship (a few huge, hot entries) — already a small
//! C_adj saves ~30% of the communication time, 51.6% at full size in the paper.

use rmatc_bench::{experiment_scale, fmt_ms, seed, Table};
use rmatc_core::{CacheSpec, DistConfig, DistLcc};
use rmatc_graph::datasets::DatasetScale;
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let log_n = match scale {
        DatasetScale::Tiny => 12,
        DatasetScale::Small => 15,
        DatasetScale::Medium => 18,
    };
    // The paper's instance is scale 20 with edge factor 16 (2^24 edges).
    let g = RmatGenerator::paper(log_n, 16)
        .generate_cleaned(seed)
        .into_csr();
    let ranks = 2;
    let n = g.vertex_count();
    let adj_bytes = g.edge_count() as usize * 4;
    let offsets_full = (n + ranks) * 8;

    let baseline = DistLcc::new(DistConfig::non_cached(ranks)).run(&g);
    let baseline_comm = baseline.max_comm_time_ns();
    println!(
        "R-MAT S{log_n} EF16 stand-in: |V| = {n}, |E| = {}, two ranks; non-cached \
         communication time {} ms.\n",
        g.logical_edge_count(),
        fmt_ms(baseline_comm)
    );

    let fractions = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

    let mut offsets_table = Table::new(
        "Figure 7 (left): offsets cache only — communication time and miss rate",
        &[
            "relative size",
            "capacity",
            "comm time (ms)",
            "vs non-cached",
            "miss rate",
            "compulsory",
        ],
    );
    for &f in &fractions {
        let capacity = ((offsets_full as f64) * f) as usize;
        let mut cfg = DistConfig::non_cached(ranks);
        cfg.cache = Some(CacheSpec::offsets_only(capacity));
        let result = DistLcc::new(cfg).run(&g);
        let stats = result
            .offsets_cache_totals()
            .expect("offsets cache enabled");
        offsets_table.row(vec![
            format!("{f:.2}"),
            format!("{:.1} KiB", capacity as f64 / 1024.0),
            fmt_ms(result.max_comm_time_ns()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - result.max_comm_time_ns() / baseline_comm)
            ),
            format!("{:.3}", stats.miss_rate()),
            format!("{:.3}", stats.compulsory_miss_rate()),
        ]);
    }
    offsets_table.print();

    let mut adj_table = Table::new(
        "Figure 7 (right): adjacencies cache only — communication time and miss rate",
        &[
            "relative size",
            "capacity",
            "comm time (ms)",
            "vs non-cached",
            "miss rate",
            "compulsory",
        ],
    );
    for &f in &fractions {
        let capacity = ((adj_bytes as f64) * f) as usize;
        let mut cfg = DistConfig::non_cached(ranks);
        cfg.cache = Some(CacheSpec::adjacencies_only(capacity));
        let result = DistLcc::new(cfg).run(&g);
        let stats = result
            .adjacency_cache_totals()
            .expect("adjacency cache enabled");
        adj_table.row(vec![
            format!("{f:.2}"),
            format!("{:.1} KiB", capacity as f64 / 1024.0),
            fmt_ms(result.max_comm_time_ns()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - result.max_comm_time_ns() / baseline_comm)
            ),
            format!("{:.3}", stats.miss_rate()),
            format!("{:.3}", stats.compulsory_miss_rate()),
        ]);
    }
    adj_table.print();
    println!(
        "Expected shape from the paper: the offsets-cache miss rate falls roughly linearly \
         with its size, the adjacency-cache miss rate falls steeply at small sizes \
         (power-law reuse), and most of the communication-time reduction comes from C_adj \
         (51.6% at full size in the paper)."
    );
}
