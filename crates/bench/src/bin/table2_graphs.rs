//! Table II — graphs used in the paper.
//!
//! Prints every dataset of Table II with the paper's reported |V|, |E| and CSR size
//! next to the synthetic stand-in generated here (after one-degree removal), so the
//! scale reduction of each substitution is explicit.

use rmatc_bench::{experiment_scale, seed, Table};
use rmatc_graph::datasets::Dataset;
use rmatc_graph::stats;

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let mut table = Table::new(
        "Table II: graphs (paper reference vs generated stand-in)",
        &[
            "Name (type)",
            "paper |V|",
            "paper |E|",
            "paper CSR",
            "ours |V|",
            "ours |E|",
            "ours CSR",
            "skew",
        ],
    );
    for ds in Dataset::table2() {
        let info = ds.info();
        let g = ds.generate(scale, seed);
        let summary = stats::summarize(info.name, &g);
        table.row(vec![
            format!("{} ({})", info.name, info.direction.label()),
            format!("{:.1} M", info.paper_vertices as f64 / 1e6),
            format!("{:.1} M", info.paper_edges as f64 / 1e6),
            stats::format_bytes(info.paper_csr_bytes),
            summary.vertices.to_string(),
            summary.logical_edges.to_string(),
            stats::format_bytes(summary.csr_size_bytes),
            format!("{:.2}", summary.degree_skewness),
        ]);
    }
    table.print();
    println!(
        "Stand-ins are generated at RMATC_SCALE={:?}; the degree-distribution shape (skew), \
         not the absolute size, is what the caching experiments depend on.",
        scale
    );
}
