//! Table III — performance comparison of the intersection methods (hybrid, SSI,
//! binary search), reported as edges processed per microsecond with 16 threads.
//!
//! Paper reference (edges/µs): R-MAT S20 EF8 0.540/0.508/0.449, EF16
//! 0.425/0.403/0.340, EF32 0.325/0.311/0.250, LiveJournal 1.084/1.018/0.984,
//! Orkut 0.596/0.552/0.503 — the expected *ordering* is hybrid ≥ SSI ≥ binary.

use rmatc_bench::{experiment_scale, measure_until, seed, Table};
use rmatc_core::{IntersectMethod, LocalConfig, LocalLcc};
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::CsrGraph;

fn rmat(scale: DatasetScale, edge_factor: u32, seed: u64) -> CsrGraph {
    let log_n = match scale {
        DatasetScale::Tiny => 11,
        DatasetScale::Small => 15,
        DatasetScale::Medium => 17,
    };
    RmatGenerator::paper(log_n, edge_factor)
        .generate_cleaned(seed)
        .into_csr()
}

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let threads = 16;
    let graphs: Vec<(String, CsrGraph)> = vec![
        ("R-MAT S20 EF8".to_string(), rmat(scale, 8, seed)),
        ("R-MAT S20 EF16".to_string(), rmat(scale, 16, seed)),
        ("R-MAT S20 EF32".to_string(), rmat(scale, 32, seed)),
        (
            "LiveJournal".to_string(),
            Dataset::LiveJournal.generate(scale, seed),
        ),
        ("Orkut".to_string(), Dataset::Orkut.generate(scale, seed)),
    ];
    // Header follows IntersectMethod::all(): the paper's three columns plus
    // this reproduction's SIMD and galloping kernel upgrades.
    let mut header = vec!["Name".to_string()];
    header.extend(IntersectMethod::all().iter().map(|m| m.label().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table III: edges processed per microsecond (16 threads)",
        &header_refs,
    );
    for (name, g) in &graphs {
        let mut cells = vec![name.clone()];
        for method in IntersectMethod::all() {
            let cfg = LocalConfig::parallel(threads).with_method(method);
            let runner = LocalLcc::new(cfg);
            let m = measure_until(|| runner.run(g).edges_per_us(), 3, 10, 0.05);
            cells.push(format!("{:.3}", m.median));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "Expected shape from the paper: the hybrid rule (Eq. 3) is never slower than using \
         SSI or binary search exclusively."
    );
}
