//! Figure 4 — data reuse in four datasets using 8 processes and 1D partitioning:
//! how much of the remote-read traffic targets the highest-degree vertices.
//!
//! Paper reference (fraction of remote reads targeting the top 10% of vertices):
//! Uniform 11.7%, R-MAT S21 EF16 91.9%, Orkut 42.5%, LiveJournal 57.4%.

use rmatc_bench::{experiment_scale, seed, Table};
use rmatc_core::reuse;
use rmatc_graph::datasets::Dataset;
use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let datasets = [
        (Dataset::Uniform, 11.7),
        (Dataset::RmatS21Ef16, 91.9),
        (Dataset::Orkut, 42.5),
        (Dataset::LiveJournal, 57.4),
    ];
    let mut table = Table::new(
        "Figure 4: remote reads targeting the top-degree vertices (8 processes, 1D)",
        &[
            "Graph",
            "top 10% share (ours)",
            "top 10% share (paper)",
            "top 1%",
            "top 50%",
        ],
    );
    for (ds, paper_pct) in datasets {
        let g = ds.generate(scale, seed);
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 8)
            .expect("8-way partition");
        let top10 = reuse::top_fraction_share(&pg, 0.10);
        let top1 = reuse::top_fraction_share(&pg, 0.01);
        let top50 = reuse::top_fraction_share(&pg, 0.50);
        table.row(vec![
            ds.short_name().to_string(),
            format!("{:.1}%", 100.0 * top10),
            format!("{paper_pct:.1}%"),
            format!("{:.1}%", 100.0 * top1),
            format!("{:.1}%", 100.0 * top50),
        ]);
    }
    table.print();
    println!(
        "Expected shape: the uniform graph shows little concentration, the power-law graphs \
         send most remote reads to a small set of hub vertices — which is the data reuse the \
         CLaMPI caches exploit."
    );
}
