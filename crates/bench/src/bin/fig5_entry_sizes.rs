//! Figure 5 — data reuse and cache-entry sizes for the Facebook-circles graph on two
//! compute nodes: remote accesses per vertex against vertex degree (left panel) and
//! `C_adj` entry size against vertex degree (right panel).

use rmatc_bench::{seed, Table};
use rmatc_core::reuse;
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};

fn main() {
    let g = Dataset::FacebookCircles.generate(DatasetScale::Tiny, seed());
    let pg =
        PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).expect("two-way partition");
    let records = reuse::vertex_reuse(&pg);

    // Bucket by degree to produce a readable series instead of one row per vertex.
    let max_degree = records.iter().map(|r| r.degree).max().unwrap_or(0);
    let bucket_width = (max_degree / 12).max(1);
    let mut table = Table::new(
        "Figure 5: remote accesses and C_adj entry size vs vertex degree (2 nodes)",
        &[
            "degree bucket",
            "vertices",
            "avg remote accesses",
            "avg entry size (B)",
        ],
    );
    let mut bucket_start = 0u32;
    while bucket_start <= max_degree {
        let bucket_end = bucket_start + bucket_width;
        let in_bucket: Vec<_> = records
            .iter()
            .filter(|r| r.degree >= bucket_start && r.degree < bucket_end)
            .collect();
        if !in_bucket.is_empty() {
            let avg_reads = in_bucket.iter().map(|r| r.remote_reads as f64).sum::<f64>()
                / in_bucket.len() as f64;
            let avg_bytes = in_bucket.iter().map(|r| r.entry_bytes as f64).sum::<f64>()
                / in_bucket.len() as f64;
            table.row(vec![
                format!("{bucket_start}..{bucket_end}"),
                in_bucket.len().to_string(),
                format!("{avg_reads:.1}"),
                format!("{avg_bytes:.0}"),
            ]);
        }
        bucket_start = bucket_end;
    }
    table.print();
    println!(
        "Observation 3.1: remote accesses per vertex correlate with its degree \
         (Pearson r = {:.2}); the C_adj entry size is exactly 4·degree bytes, so entry \
         reuse correlates with entry size.",
        reuse::degree_read_correlation(&records)
    );
}
