//! Figure 8 — original (LRU + positional) vs application-defined (degree centrality)
//! eviction scores, on an R-MAT graph, with C_adj capped at 25% of each rank's
//! non-local partition so that evictions actually happen.
//!
//! Paper reference: degree-centrality scores improve caching performance by
//! 14.4%–35.6% for this dataset.

use rmatc_bench::{experiment_scale, fmt_ns, ranks_small_scale, seed, Table};
use rmatc_core::{CacheSpec, DistConfig, DistLcc, ScoreMode};
use rmatc_graph::datasets::DatasetScale;
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let log_n = match scale {
        DatasetScale::Tiny => 12,
        DatasetScale::Small => 15,
        DatasetScale::Medium => 18,
    };
    let g = RmatGenerator::paper(log_n, 16)
        .generate_cleaned(seed)
        .into_csr();
    let adj_bytes = g.edge_count() as f64 * 4.0;

    let mut table = Table::new(
        "Figure 8: LRU/positional vs degree-centrality eviction scores",
        &[
            "ranks",
            "avg remote read (LRU)",
            "avg remote read (degree)",
            "improvement",
            "miss rate (LRU)",
            "miss rate (degree)",
            "compulsory",
        ],
    );
    for ranks in ranks_small_scale() {
        // 25% of the non-local partition: each rank's remote data is (p-1)/p of the
        // adjacency array; the cache gets a quarter of that.
        let non_local = adj_bytes * (ranks as f64 - 1.0) / ranks as f64;
        let capacity = (0.25 * non_local) as usize;
        let run = |mode: ScoreMode| {
            let mut cfg = DistConfig::non_cached(ranks);
            cfg.cache = Some(CacheSpec::adjacencies_only(capacity));
            cfg.score_mode = mode;
            DistLcc::new(cfg).run(&g)
        };
        let lru = run(ScoreMode::Lru);
        let degree = run(ScoreMode::DegreeCentrality);
        let lru_read = lru
            .ranks
            .iter()
            .map(|r| r.avg_remote_read_ns())
            .sum::<f64>()
            / lru.ranks.len() as f64;
        let deg_read = degree
            .ranks
            .iter()
            .map(|r| r.avg_remote_read_ns())
            .sum::<f64>()
            / degree.ranks.len() as f64;
        let lru_stats = lru.adjacency_cache_totals().expect("cache enabled");
        let deg_stats = degree.adjacency_cache_totals().expect("cache enabled");
        table.row(vec![
            ranks.to_string(),
            fmt_ns(lru_read),
            fmt_ns(deg_read),
            format!("{:.1}%", 100.0 * (1.0 - deg_read / lru_read)),
            format!("{:.3}", lru_stats.miss_rate()),
            format!("{:.3}", deg_stats.miss_rate()),
            format!("{:.3}", deg_stats.compulsory_miss_rate()),
        ]);
    }
    table.print();
    println!(
        "Expected shape from the paper: degree-centrality scores reduce the adjacency-cache \
         miss rate and the average remote-read time (14.4%–35.6% in the paper) as long as the \
         cache is under pressure; the compulsory-miss floor (grey area in the figure) grows \
         with the rank count."
    );
}
