//! Figure 6 — strong scaling on shared memory with the hybrid method: edges
//! processed per microsecond for 1..16 threads.
//!
//! Paper reference: 2.0× (R-MAT S20 EF16), 2.7× (R-MAT S20 EF32) and 1.2× (Orkut)
//! speedup from 1 to 16 threads. Note: if the machine running this binary has fewer
//! physical cores than threads, the upper end of the sweep cannot show real speedup;
//! the binary prints the detected core count alongside the results.

use rmatc_bench::{experiment_scale, measure_until, seed, Table};
use rmatc_core::{LocalConfig, LocalLcc};
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::CsrGraph;

fn rmat(scale: DatasetScale, edge_factor: u32, seed: u64) -> CsrGraph {
    let log_n = match scale {
        DatasetScale::Tiny => 11,
        DatasetScale::Small => 15,
        DatasetScale::Medium => 17,
    };
    RmatGenerator::paper(log_n, edge_factor)
        .generate_cleaned(seed)
        .into_csr()
}

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let graphs: Vec<(String, CsrGraph)> = vec![
        ("R-MAT S20 EF16".to_string(), rmat(scale, 16, seed)),
        ("R-MAT S20 EF32".to_string(), rmat(scale, 32, seed)),
        ("Orkut".to_string(), Dataset::Orkut.generate(scale, seed)),
    ];
    let thread_counts = [1usize, 2, 4, 8, 16];
    let mut header: Vec<String> = vec!["Graph".to_string()];
    header.extend(thread_counts.iter().map(|t| format!("{t} thr")));
    header.push("speedup 1→16".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 6: shared-memory strong scaling (edges/µs, hybrid method)",
        &header_refs,
    );
    for (name, g) in &graphs {
        let mut cells = vec![name.clone()];
        let mut first = 0.0;
        let mut last = 0.0;
        for &threads in &thread_counts {
            // Force the parallel path even on modest adjacency lists so the
            // parallel-region overhead the paper discusses is visible.
            let mut cfg = LocalConfig::parallel(threads);
            cfg.parallel_cutoff = 256;
            let runner = LocalLcc::new(cfg);
            let m = measure_until(|| runner.run(g).edges_per_us(), 3, 8, 0.05);
            if threads == 1 {
                first = m.median;
            }
            last = m.median;
            cells.push(format!("{:.3}", m.median));
        }
        cells.push(format!(
            "{:.2}x",
            if first > 0.0 { last / first } else { 0.0 }
        ));
        table.row(cells);
    }
    table.print();
    println!(
        "Detected {cores} hardware thread(s). The paper measures up to 2.7x on a 16-core Xeon; \
         with fewer cores the curve flattens and the per-edge parallel-region overhead \
         (the bottleneck the paper identifies) dominates."
    );
}
