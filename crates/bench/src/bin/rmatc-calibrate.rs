//! ATLAS-style cost-model calibrator (see `docs/TUNING.md`).
//!
//! Usage: `rmatc-calibrate [--quick] [--dry-run] [--json <path>] [--out <path>]`
//!
//! Micro-probes the four intersection kernels across a log-spaced grid of
//! `(|A|, |B|)` shapes, fits this machine's merge↔search and
//! galloping↔binary-search crossovers, and prints them next to the analytic
//! model's curves. Unless `--dry-run` is given, the fitted
//! [`CostProfile`](rmatc_core::CostProfile) is persisted to the default
//! profile path (`RMATC_PROFILE`, or `~/.cache/rmatc/profile-<host>.json`),
//! where [`CostModel::from_environment`](rmatc_core::CostModel) picks it up.
//!
//! * `--quick` — coarse probe (tens of milliseconds); default is the full
//!   probe (under a second).
//! * `--dry-run` — probe and fit but write no profile file; this is what CI
//!   runs to keep the probe harness from rotting.
//! * `--json <path>` — additionally write the fitted profile JSON to an
//!   explicit path (works with `--dry-run`; CI uploads it as an artifact).
//! * `--out <path>` — persist to this path instead of the default.

use rmatc_core::intersect::calibrate::{
    calibrate, default_profile_path, save_profile, Calibration, CalibrationConfig, LOG_B_MIN,
};
use rmatc_core::intersect::select_kernel;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut dry_run = false;
    let mut quick = false;
    let mut json_path: Option<PathBuf> = None;
    let mut out_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dry-run" => dry_run = true,
            "--quick" => quick = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return usage_error("--json requires a path"),
            },
            "--out" => match args.next() {
                Some(path) => out_path = Some(PathBuf::from(path)),
                None => return usage_error("--out requires a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: rmatc-calibrate [--quick] [--dry-run] [--json <path>] [--out <path>]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let config = if quick {
        CalibrationConfig::quick()
    } else {
        CalibrationConfig::full()
    };
    eprintln!(
        "probing kernels ({} mode: {} merge grid points, {} key sizes)...",
        if quick { "quick" } else { "full" },
        config.probe_log_b.len(),
        config.probe_log_a.len(),
    );
    let calibration = calibrate(&config);
    print_report(&calibration);

    if let Err(e) = calibration.profile.validate() {
        eprintln!("fitted profile failed validation: {e}");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &json_path {
        if let Err(e) = save_profile(&calibration.profile, path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("profile JSON written to {}", path.display());
    }

    if dry_run {
        println!("dry run: no profile persisted");
        return ExitCode::SUCCESS;
    }
    let path = out_path.unwrap_or_else(default_profile_path);
    match save_profile(&calibration.profile, &path) {
        Ok(()) => {
            println!("profile persisted to {}", path.display());
            println!("(set RMATC_PROFILE to override; delete the file to fall back to analytic)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to persist {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// The fitted curves next to the analytic model, plus where they disagree on
/// kernel choice — the single table a user needs to decide whether the
/// calibrated model is worth enabling on this machine.
fn print_report(calibration: &Calibration) {
    let profile = &calibration.profile;
    println!("\nmerge <-> search crossover (ratio |B|/|A| above which search wins)");
    println!(
        "   {:>10} {:>14} {:>14} {:>10}",
        "|B|", "measured", "analytic", "probed"
    );
    let probed: Vec<u32> = calibration.merge_probes.iter().map(|p| p.log_b).collect();
    for (i, &threshold) in profile.merge_ratio.iter().enumerate() {
        let log_b = LOG_B_MIN + i as u32;
        println!(
            "   {:>10} {:>14.2} {:>14.2} {:>10}",
            1u64 << log_b,
            threshold,
            log_b as f64 - 1.0,
            if probed.contains(&log_b) { "yes" } else { "-" }
        );
    }
    println!("\ncompressed merge <-> skip crossover (fused kernels, same grid)");
    let probed: Vec<u32> = calibration
        .compressed_probes
        .iter()
        .map(|p| p.log_b)
        .collect();
    for (i, &threshold) in profile.compressed_merge_ratio.iter().enumerate() {
        let log_b = LOG_B_MIN + i as u32;
        println!(
            "   {:>10} {:>14.2} {:>14.2} {:>10}",
            1u64 << log_b,
            threshold,
            log_b as f64 - 1.0,
            if probed.contains(&log_b) { "yes" } else { "-" }
        );
    }
    println!("\ngalloping vs binary search across the probed sweep");
    for s in &calibration.gallop_samples {
        println!(
            "   |A| = 2^{:<2} |B| = 2^{:<2}  galloping {:>10.0} ns  binary {:>10.0} ns  -> {}",
            s.log_a,
            s.log_b,
            s.gallop_ns,
            s.binary_ns,
            if s.gallop_wins() {
                "galloping"
            } else {
                "binary"
            }
        );
    }
    println!(
        "   fitted skew exponent (least regret): {:.3}  (analytic: 2.000)",
        profile.gallop_exponent
    );

    let mut disagreements = 0usize;
    let mut shapes = 0usize;
    for log_b in 6..=20u32 {
        for log_gap in 0..=log_b.min(12) {
            shapes += 1;
            let long = 1usize << log_b;
            let short = long >> log_gap;
            if profile.select_kernel(short, long) != select_kernel(short, long) {
                disagreements += 1;
            }
        }
    }
    println!(
        "\ncalibrated model changes the kernel on {disagreements}/{shapes} probed power-of-two shapes"
    );
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("{message}");
    eprintln!("usage: rmatc-calibrate [--quick] [--dry-run] [--json <path>] [--out <path>]");
    ExitCode::from(2)
}
