//! Figure 10 — strong scaling at large scale (128–512 computing nodes) on
//! R-MAT S30 EF16, uk-2005 and wiki-en, comparing cached and non-cached LCC against
//! TriC.
//!
//! Paper reference shapes: 1.4x–3.4x further speedup from 128 to 512 nodes, the
//! cached version up to 73% faster than the non-cached one on R-MAT S30 (with a
//! cache of only 12% of the CSR size), and up to 3.6x over TriC.

use rmatc_bench::runs::ranks_large_scale;
use rmatc_bench::{experiment_scale, fmt_ms, seed, Table};
use rmatc_core::{DistConfig, DistLcc};
use rmatc_graph::datasets::Dataset;
use rmatc_tric::{Tric, TricConfig};

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    let rank_counts = ranks_large_scale();
    for ds in Dataset::figure10() {
        let g = ds.generate(scale, seed);
        // The paper's large-scale cache is ~12% of the CSR representation.
        let cache_budget = (g.csr_size_bytes() as f64 * 0.12) as usize;
        let mut table = Table::new(
            &format!(
                "Figure 10: {} — running time (ms) vs number of computing nodes",
                ds.short_name()
            ),
            &[
                "ranks",
                "LCC non-cached",
                "LCC cached",
                "TriC",
                "cached vs non-cached",
            ],
        );
        for &ranks in &rank_counts {
            if ranks >= g.vertex_count() {
                continue;
            }
            let non_cached = DistLcc::new(DistConfig::non_cached(ranks)).run(&g);
            let cached =
                DistLcc::new(DistConfig::cached(ranks, cache_budget).with_degree_scores()).run(&g);
            let tric = Tric::new(TricConfig::plain(ranks)).run(&g);
            assert_eq!(non_cached.triangle_count, cached.triangle_count);
            let improvement = 1.0 - cached.max_rank_time_ns() / non_cached.max_rank_time_ns();
            table.row(vec![
                ranks.to_string(),
                fmt_ms(non_cached.max_rank_time_ns()),
                fmt_ms(cached.max_rank_time_ns()),
                fmt_ms(tric.max_rank_time_ns()),
                format!("{:+.1}%", 100.0 * improvement),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "Expected shape: scaling flattens relative to the small-scale runs (load imbalance of \
         the 1D distribution), caching still reduces the running time on the R-MAT graph, and \
         TriC stays slower throughout."
    );
}
