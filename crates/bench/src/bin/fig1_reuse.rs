//! Figure 1 (right) — LCC data reuse on the Facebook-circles graph partitioned over
//! two compute nodes: how many remote reads (RMA gets) are repeated how many times,
//! from the perspective of rank 0.

use rmatc_bench::{seed, Table};
use rmatc_core::reuse;
use rmatc_graph::datasets::{Dataset, DatasetScale};
use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};

fn main() {
    let g = Dataset::FacebookCircles.generate(DatasetScale::Tiny, seed());
    let pg =
        PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).expect("two-way partition");
    let counts = reuse::remote_read_counts_from_rank(&pg, 0);
    let hist = reuse::repetition_histogram(&counts);

    println!(
        "Graph: Facebook-circles stand-in, |V| = {}, |E| = {} (paper: 4,039 / 88,234).",
        g.vertex_count(),
        g.logical_edge_count()
    );
    println!("Remote reads issued by rank 0, number of nodes: 2.\n");
    let mut table = Table::new(
        "Figure 1 (right): remote-read repetition histogram",
        &["repetitions", "reads repeated that many times"],
    );
    // The paper's y-axis buckets repetitions at 1, 4, 16, 64, 256; aggregate the same way.
    let buckets = [1u64, 4, 16, 64, 256, u64::MAX];
    let mut aggregated = vec![0u64; buckets.len()];
    for b in &hist {
        let idx = buckets
            .iter()
            .position(|&cap| b.repetitions <= cap)
            .unwrap();
        aggregated[idx] += b.reads;
    }
    for (i, &cap) in buckets.iter().enumerate() {
        let label = match i {
            0 => "1".to_string(),
            _ if cap == u64::MAX => "> 256".to_string(),
            _ => format!("{}..{}", buckets[i - 1] + 1, cap),
        };
        table.row(vec![label, aggregated[i].to_string()]);
    }
    table.print();
    let total: u64 = counts.iter().sum();
    println!(
        "Total remote reads from rank 0: {total}; distinct targets: {}; reuse fraction \
         (reads a perfect cache would eliminate): {:.1}%",
        counts.iter().filter(|&&c| c > 0).count(),
        100.0 * reuse::reuse_fraction(&counts)
    );
}
