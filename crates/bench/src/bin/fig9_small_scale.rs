//! Figure 9 — strong scaling at small scale (4–64 computing nodes) on six graphs,
//! comparing the asynchronous LCC (non-cached and cached with a 16 GiB-equivalent
//! budget) against TriC and TriC Buffered.
//!
//! Paper reference shapes: the asynchronous implementation scales to 14x
//! (LiveJournal1) / 13.9x (LiveJournal) / 10.8x (R-MAT S21) from 4 to 64 nodes;
//! caching helps most in the middle of the range (up to 67% on R-MAT S21, 47% on
//! LiveJournal) and can hurt when compulsory misses dominate; TriC is 1–2 orders of
//! magnitude slower on the scale-free graphs.

use rmatc_bench::{experiment_scale, fmt_ms, ranks_small_scale, seed, Table};
use rmatc_core::{DistConfig, DistLcc};
use rmatc_graph::datasets::Dataset;
use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};
use rmatc_tric::{Tric, TricConfig};

fn main() {
    let scale = experiment_scale();
    let seed = seed();
    // The paper reserves 16 GiB per node for the caches; scale that budget down with
    // the same ratio as the graphs themselves (≈ graph CSR size / paper CSR size).
    let rank_counts = ranks_small_scale();
    for ds in Dataset::figure9() {
        let g = ds.generate(scale, seed);
        let cache_budget = (g.csr_size_bytes() as usize) / 2;
        let mut table = Table::new(
            &format!(
                "Figure 9: {} — running time (ms) vs number of computing nodes",
                ds.short_name()
            ),
            &[
                "ranks",
                "LCC non-cached",
                "LCC cached",
                "TriC",
                "TriC buffered",
                "remote edges",
            ],
        );
        let mut first_noncached = None;
        let mut last_noncached = None;
        for &ranks in &rank_counts {
            if ranks >= g.vertex_count() {
                continue;
            }
            let non_cached = DistLcc::new(DistConfig::non_cached(ranks)).run(&g);
            let cached =
                DistLcc::new(DistConfig::cached(ranks, cache_budget).with_degree_scores()).run(&g);
            let tric = Tric::new(TricConfig::plain(ranks)).run(&g);
            let tric_buffered = Tric::new(TricConfig::buffered(ranks)).run(&g);
            assert_eq!(non_cached.triangle_count, cached.triangle_count);
            assert_eq!(non_cached.triangle_count, tric.triangle_count);
            if first_noncached.is_none() {
                first_noncached = Some(non_cached.max_rank_time_ns());
            }
            last_noncached = Some(non_cached.max_rank_time_ns());
            table.row(vec![
                ranks.to_string(),
                fmt_ms(non_cached.max_rank_time_ns()),
                fmt_ms(cached.max_rank_time_ns()),
                fmt_ms(tric.max_rank_time_ns()),
                fmt_ms(tric_buffered.max_rank_time_ns()),
                format!("{:.1}%", 100.0 * non_cached.remote_edge_fraction),
            ]);
        }
        // Partitioned remote-edge growth context (Section IV-D2).
        let _ = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, rank_counts[0]);
        table.print();
        if let (Some(first), Some(last)) = (first_noncached, last_noncached) {
            println!(
                "{}: non-cached speedup from {} to {} ranks: {:.1}x (paper: 9.2x–14x depending \
                 on the graph)\n",
                ds.short_name(),
                rank_counts.first().unwrap(),
                rank_counts.last().unwrap(),
                first / last
            );
        }
    }
    println!(
        "Expected shape: running time decreases with the rank count for the asynchronous \
         variants, caching wins whenever reuse survives partitioning, and both TriC variants \
         are substantially slower on the scale-free graphs."
    );
}
