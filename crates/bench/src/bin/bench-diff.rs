//! Bench-history regression gate.
//!
//! Usage: `bench-diff [--threshold <pct>] <history.ndjson>...`
//!
//! For every history file (written by `cargo bench ... -- --history <path>`),
//! compares the newest run's medians against the previous run's and prints a
//! per-benchmark delta table. Exits non-zero when any benchmark's median
//! regressed by more than the threshold (default 15%) between two runs on the
//! same host; runs recorded on different hosts are reported but never gated,
//! because their timings are not comparable.

use rmatc_bench::history::{compare_latest, parse_history};
use std::process::ExitCode;

const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

fn main() -> ExitCode {
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => threshold_pct = pct,
                _ => {
                    eprintln!("--threshold requires a positive percentage");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bench-diff [--threshold <pct>] <history.ndjson>...");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: bench-diff [--threshold <pct>] <history.ndjson>...");
        return ExitCode::from(2);
    }

    let threshold = threshold_pct / 100.0;
    let mut failed = false;
    for path in &paths {
        let content = match std::fs::read_to_string(path) {
            Ok(content) => content,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let runs = parse_history(&content);
        println!("== {path} ({} runs recorded)", runs.len());
        let Some(comparison) = compare_latest(&runs) else {
            println!("   no previous run to compare against — gate skipped");
            continue;
        };
        println!(
            "   {} -> {}{}",
            short(&comparison.old_commit),
            short(&comparison.new_commit),
            if comparison.host_mismatch {
                "  [different hosts: reporting only, gate disarmed]"
            } else {
                ""
            }
        );
        for delta in &comparison.deltas {
            let change = delta.relative_change() * 100.0;
            let marker = if !comparison.host_mismatch && change > threshold_pct {
                "  << REGRESSION"
            } else {
                ""
            };
            println!(
                "   {:<56} {:>12.0} ns -> {:>12.0} ns  {:>+7.1}%{marker}",
                delta.key, delta.old_median_ns, delta.new_median_ns, change
            );
        }
        let regressions = comparison.regressions(threshold);
        if !regressions.is_empty() {
            eprintln!(
                "{path}: {} benchmark(s) regressed more than {threshold_pct}%",
                regressions.len()
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn short(commit: &str) -> &str {
    commit.get(..12).unwrap_or(commit)
}
