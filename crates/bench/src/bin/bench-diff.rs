//! Bench-history regression gate.
//!
//! Usage: `bench-diff [--threshold <pct>] <history.ndjson>...`
//!
//! For every history file (written by `cargo bench ... -- --history <path>`),
//! compares the newest run's medians against the previous run's and prints a
//! per-benchmark delta table. Exits non-zero when any benchmark's median
//! regressed by more than its threshold between two runs on the same host;
//! runs recorded on different hosts are reported but never gated, because
//! their timings are not comparable.
//!
//! Thresholds are per benchmark: the default is 15% (overridable with
//! `--threshold`), but benchmarks listed in [`PER_BENCH_THRESHOLD_PCT`] carry
//! their own wider band — microbenches whose whole body is a cache probe or a
//! handful of loads (e.g. `remote_read/cached_hit`) jitter well past 15% on
//! shared CI runners without any code change, and a gate that cries wolf gets
//! ignored. Keys match by prefix, so one entry can cover a parameterized
//! family like `intersect/parallel/...`.

use rmatc_bench::history::{compare_latest, parse_history};
use std::process::ExitCode;

const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

/// Benchmarks allowed a wider regression band than the default, as
/// `(key prefix, threshold pct)`. First matching prefix wins.
///
/// Rationale per entry — keep this comment honest when editing:
/// * `remote_read/cached_hit` — ~100 ns of pure cache-probe; a scheduler
///   hiccup during its short sample window shifts the median by tens of
///   percent (an A/B of identical code on the single-core container
///   measured a ±31% run-to-run spread, so the band must clear that).
/// * `remote_read/cached_cold` — eviction-heavy loop, sensitive to physical
///   page layout run-to-run.
/// * `remote_read/non_cached` / `remote_read/faulty_path_off` — per-edge
///   transfer loop on the same read path; measured same-code run-to-run
///   swing on the single-core container is 20-30% (an A/B against the
///   pre-robustness tree under matched load showed the code itself neutral).
/// * `intersect/parallel/` — multi-threaded section; CI runners share cores,
///   so thread wake latency dominates small-sample medians.
/// * `intersect/costmodel/hybrid_calibrated` — re-fits its profile from live
///   micro-probes at bench startup, so its kernel routing (and hence median)
///   legitimately moves between runs on a noisy host; the entry exists to
///   track the analytic/calibrated relationship, not as a tight gate.
/// * `cache_policy/replay/` — trace-replay timings over a whole synthetic
///   access trace; dominated by hash/alloc churn whose run-to-run swing on a
///   shared runner exceeds the default band. The `missrate_ppm` /
///   `net_bytes_per_lookup` *metric* records from the same bench are fully
///   deterministic and deliberately NOT listed: any drift there is a real
///   policy-behaviour change and should trip the default gate.
/// * `remote_read/non_overlapped_injected` / `remote_read/pipelined` — spin
///   for injected Aries latencies in wall time, so absolute medians track
///   the host's timer/scheduler as much as the code; the overlap *ratio*
///   between them is the guarded property (see `docs/OVERLAP.md`), and a
///   real loss of overlap moves `pipelined` far beyond this band anyway.
/// * `remote_read/compressed_hit` / `remote_read/compressed_cold` — same
///   short read loops as their plain counterparts (`cached_hit` /
///   `cached_cold`) with the fused block decode on top, so they inherit the
///   same run-to-run jitter bands. The paired `compressed/...` *metric*
///   rows (compression ratio, stored bytes per lookup) are deterministic
///   and deliberately NOT listed — drift there is a real codec or admission
///   change and should trip the default gate.
/// * `service/drive/` — a whole resident-engine drive (partitioning, window
///   build, thousands of queries) per iteration; alloc and scheduler churn
///   dominate the small-sample median on a shared runner.
/// * `service/p50_ns` / `service/p99_ns` — virtual-latency percentiles whose
///   clock includes *measured* batch compute time, so they inherit wall-time
///   jitter. The `service/dedup_ratio_x1000` and `service/missrate_ppm`
///   metric rows from the same bench are fully deterministic (modeled
///   network, deterministic stream) and deliberately NOT listed: drift there
///   is a real batching or caching behaviour change and should trip the
///   default gate.
const PER_BENCH_THRESHOLD_PCT: &[(&str, f64)] = &[
    ("remote_read/cached_hit", 50.0),
    ("remote_read/cached_cold", 25.0),
    ("remote_read/compressed_hit", 50.0),
    ("remote_read/compressed_cold", 25.0),
    ("remote_read/non_cached", 25.0),
    ("remote_read/faulty_path_off", 25.0),
    ("remote_read/non_overlapped_injected", 30.0),
    ("remote_read/pipelined", 30.0),
    ("intersect/parallel/", 25.0),
    ("intersect/costmodel/hybrid_calibrated", 60.0),
    ("cache_policy/replay/", 30.0),
    ("service/drive/", 30.0),
    ("service/p50_ns", 40.0),
    ("service/p99_ns", 40.0),
];

/// The gate threshold (fraction, not percent) for one benchmark key.
fn threshold_for(key: &str, default_pct: f64) -> f64 {
    PER_BENCH_THRESHOLD_PCT
        .iter()
        .find(|(prefix, _)| key.starts_with(prefix))
        .map(|&(_, pct)| pct)
        .unwrap_or(default_pct)
        / 100.0
}

fn main() -> ExitCode {
    let mut default_pct = DEFAULT_THRESHOLD_PCT;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => default_pct = pct,
                _ => {
                    eprintln!("--threshold requires a positive percentage");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: bench-diff [--threshold <pct>] <history.ndjson>...");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        eprintln!("usage: bench-diff [--threshold <pct>] <history.ndjson>...");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &paths {
        let content = match std::fs::read_to_string(path) {
            Ok(content) => content,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let runs = parse_history(&content);
        println!("== {path} ({} runs recorded)", runs.len());
        let Some(comparison) = compare_latest(&runs) else {
            println!("   no previous run to compare against — gate skipped");
            continue;
        };
        println!(
            "   {} -> {}{}",
            short(&comparison.old_commit),
            short(&comparison.new_commit),
            if comparison.host_mismatch {
                "  [different hosts: reporting only, gate disarmed]"
            } else {
                ""
            }
        );
        let mut regressions = 0usize;
        for delta in &comparison.deltas {
            let threshold = threshold_for(&delta.key, default_pct);
            let change = delta.relative_change() * 100.0;
            let regressed = !comparison.host_mismatch && delta.relative_change() > threshold;
            let marker = if regressed {
                regressions += 1;
                "  << REGRESSION"
            } else {
                ""
            };
            // Spread context from --repeat runs: a delta inside the new
            // run's own spread is indistinguishable from noise.
            let spread = if delta.new_spread_pct > 0.0 {
                format!(" [spread ±{:.1}%]", delta.new_spread_pct)
            } else {
                String::new()
            };
            println!(
                "   {:<56} {:>12.0} ns -> {:>12.0} ns  {:>+7.1}% (gate {:.0}%){spread}{marker}",
                delta.key,
                delta.old_median_ns,
                delta.new_median_ns,
                change,
                threshold * 100.0
            );
        }
        if regressions > 0 {
            eprintln!("{path}: {regressions} benchmark(s) regressed past their threshold");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn short(commit: &str) -> &str {
    commit.get(..12).unwrap_or(commit)
}
