//! Section IV-D (text) — the quantities quoted in prose rather than plotted:
//! the growth of the remote-edge fraction with the rank count (66% → 98% for
//! R-MAT S21 EF16 between 4 and 64 nodes), the communication share of the total
//! running time (78.9% → 97.7%), and the growth of compulsory misses for the
//! LiveJournal graph (15.5% at 4 nodes → 64.9% at 64 nodes).

use rmatc_bench::{experiment_scale, ranks_small_scale, seed, Table};
use rmatc_core::{DistConfig, DistLcc};
use rmatc_graph::datasets::Dataset;

fn main() {
    let scale = experiment_scale();
    let seed = seed();

    let rmat = Dataset::RmatS21Ef16.generate(scale, seed);
    let mut table = Table::new(
        "Section IV-D: R-MAT S21 EF16 — remote edges and communication share",
        &[
            "ranks",
            "remote edge fraction",
            "comm share of total",
            "avg per-rank gets",
        ],
    );
    for ranks in ranks_small_scale() {
        let result = DistLcc::new(DistConfig::non_cached(ranks)).run(&rmat);
        let comm_share = result
            .ranks
            .iter()
            .map(|r| r.timing.comm_fraction())
            .sum::<f64>()
            / result.ranks.len() as f64;
        let avg_gets = result.total_gets() as f64 / ranks as f64;
        table.row(vec![
            ranks.to_string(),
            format!("{:.1}%", 100.0 * result.remote_edge_fraction),
            format!("{:.1}%", 100.0 * comm_share),
            format!("{avg_gets:.0}"),
        ]);
    }
    table.print();
    println!(
        "Paper reference: remote edges grow from 66% (4 nodes) to 98% (64 nodes); \
         communication grows from 78.9% to 97.7% of the running time.\n"
    );

    let lj = Dataset::LiveJournal.generate(scale, seed);
    let cache_budget = (lj.csr_size_bytes() as usize) / 2;
    let mut misses = Table::new(
        "Section IV-D: LiveJournal — compulsory misses vs rank count (cached run)",
        &[
            "ranks",
            "compulsory miss rate",
            "overall miss rate",
            "hit rate",
        ],
    );
    for ranks in ranks_small_scale() {
        let cfg = DistConfig::cached(ranks, cache_budget).with_degree_scores();
        let result = DistLcc::new(cfg).run(&lj);
        let stats = match result.adjacency_cache_totals() {
            Some(s) => s,
            None => continue,
        };
        misses.row(vec![
            ranks.to_string(),
            format!("{:.1}%", 100.0 * stats.compulsory_miss_rate()),
            format!("{:.1}%", 100.0 * stats.miss_rate()),
            format!("{:.1}%", 100.0 * stats.hit_rate()),
        ]);
    }
    misses.print();
    println!(
        "Paper reference: compulsory misses grow from 15.5% of remote reads at 4 nodes to \
         64.9% at 64 nodes, which is what limits caching at high node counts."
    );
}
