//! Shared helpers for the experiment binaries: scale selection, seeds, rank lists
//! and time formatting.

use rmatc_graph::datasets::DatasetScale;

/// Reads the experiment scale from the `RMATC_SCALE` environment variable
/// (`tiny` / `small` / `medium`, default `tiny`).
pub fn experiment_scale() -> DatasetScale {
    match std::env::var("RMATC_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "medium" => DatasetScale::Medium,
        "small" => DatasetScale::Small,
        _ => DatasetScale::Tiny,
    }
}

/// Deterministic seed shared by all experiments; override with `RMATC_SEED`.
pub fn seed() -> u64 {
    std::env::var("RMATC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The node counts of the paper's small-scale experiments (Figures 8 and 9).
/// Override with `RMATC_MAX_RANKS` to cap the sweep.
pub fn ranks_small_scale() -> Vec<usize> {
    let cap: usize = std::env::var("RMATC_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    [4usize, 8, 16, 32, 64]
        .into_iter()
        .filter(|&r| r <= cap)
        .collect()
}

/// The node counts of the paper's large-scale experiments (Figure 10).
pub fn ranks_large_scale() -> Vec<usize> {
    let cap: usize = std::env::var("RMATC_MAX_RANKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    [128usize, 256, 512]
        .into_iter()
        .filter(|&r| r <= cap)
        .collect()
}

/// Formats nanoseconds as milliseconds with three significant decimals.
pub fn fmt_ms(ns: f64) -> String {
    format!("{:.3}", ns / 1e6)
}

/// Formats nanoseconds as microseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_tiny() {
        // The variable may be set by the caller's environment; only check the
        // fallback parse behaviour through explicit strings.
        assert!(matches!(
            match "weird" {
                "medium" => DatasetScale::Medium,
                "small" => DatasetScale::Small,
                _ => DatasetScale::Tiny,
            },
            DatasetScale::Tiny
        ));
        let _ = experiment_scale();
    }

    #[test]
    fn rank_lists_match_the_paper() {
        // Without a cap the sweeps are exactly the paper's x-axes.
        std::env::remove_var("RMATC_MAX_RANKS");
        assert_eq!(ranks_small_scale(), vec![4, 8, 16, 32, 64]);
        assert_eq!(ranks_large_scale(), vec![128, 256, 512]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_ms(2_500_000.0), "2.500");
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
    }
}
