//! Scientific-benchmarking measurement loop: median with a 95% confidence interval,
//! repeated until the interval is tight (the paper's LibLSB methodology).

/// Summary of repeated measurements of one quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Median of the samples.
    pub median: f64,
    /// Lower bound of the 95% confidence interval of the median.
    pub ci_low: f64,
    /// Upper bound of the 95% confidence interval of the median.
    pub ci_high: f64,
    /// All collected samples, in collection order.
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Builds the summary from raw samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let median = percentile(&sorted, 0.5);
        let (ci_low, ci_high) = median_ci95(&sorted);
        Self {
            median,
            ci_low,
            ci_high,
            samples,
        }
    }

    /// Half-width of the confidence interval relative to the median.
    pub fn relative_ci(&self) -> f64 {
        if self.median == 0.0 {
            return 0.0;
        }
        ((self.ci_high - self.ci_low) / 2.0 / self.median).abs()
    }

    /// Whether the 95% CI half-width is within `fraction` of the median (the paper
    /// stops repeating at 5%).
    pub fn is_tight(&self, fraction: f64) -> bool {
        self.relative_ci() <= fraction
    }
}

/// Runs `sample` repeatedly until the 95% CI of the median is within
/// `target_rel_ci` of the median, bounded by `min_reps` and `max_reps`, and returns
/// the summary.
pub fn measure_until<F: FnMut() -> f64>(
    mut sample: F,
    min_reps: usize,
    max_reps: usize,
    target_rel_ci: f64,
) -> Measurement {
    assert!(min_reps >= 1 && max_reps >= min_reps);
    let mut samples = Vec::with_capacity(min_reps);
    for _ in 0..min_reps {
        samples.push(sample());
    }
    loop {
        let m = Measurement::from_samples(samples.clone());
        if m.is_tight(target_rel_ci) || samples.len() >= max_reps {
            return m;
        }
        samples.push(sample());
    }
}

/// Linear-interpolated percentile of a sorted slice (`q` in `[0, 1]`).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// 95% confidence interval of the median via the binomial order-statistic method.
fn median_ci95(sorted: &[f64]) -> (f64, f64) {
    let n = sorted.len();
    if n < 6 {
        // Too few samples for a meaningful interval: report the full range.
        return (sorted[0], sorted[n - 1]);
    }
    let nf = n as f64;
    let half_width = 1.96 * (nf * 0.25).sqrt();
    let lo = (((nf / 2.0) - half_width).floor().max(0.0)) as usize;
    let hi = ((((nf / 2.0) + half_width).ceil()) as usize).min(n - 1);
    (sorted[lo], sorted[hi])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_counts() {
        let m = Measurement::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.median, 2.0);
        let m = Measurement::from_samples(vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.median, 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = vec![0.0, 10.0, 20.0, 30.0];
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 1.0), 30.0);
        assert!((percentile(&sorted, 0.5) - 15.0).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn tight_samples_give_tight_ci() {
        let m = Measurement::from_samples(vec![100.0; 20]);
        assert!(m.is_tight(0.05));
        assert_eq!(m.relative_ci(), 0.0);
    }

    #[test]
    fn noisy_samples_give_wide_ci() {
        let samples: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 10.0 } else { 1000.0 })
            .collect();
        let m = Measurement::from_samples(samples);
        assert!(!m.is_tight(0.05));
    }

    #[test]
    fn measure_until_stops_early_on_stable_values() {
        let mut calls = 0;
        let m = measure_until(
            || {
                calls += 1;
                42.0
            },
            5,
            100,
            0.05,
        );
        assert_eq!(m.median, 42.0);
        assert_eq!(
            calls, 5,
            "stable samples should stop at the minimum repetitions"
        );
    }

    #[test]
    fn measure_until_respects_the_cap() {
        let mut x = 0.0;
        let m = measure_until(
            || {
                x += 100.0;
                x
            },
            3,
            10,
            0.01,
        );
        assert_eq!(m.samples.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        Measurement::from_samples(vec![]);
    }

    #[test]
    fn ci_brackets_the_median() {
        let samples: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let m = Measurement::from_samples(samples);
        assert!(m.ci_low <= m.median && m.median <= m.ci_high);
        assert!(m.ci_low > 30.0 && m.ci_high < 72.0);
    }
}
