//! Benchmark harness reproducing the paper's evaluation.
//!
//! Every table and figure of Section IV has a dedicated binary in `src/bin/`
//! (`table2_graphs`, `table3_intersection`, `fig1_reuse`, …, `fig10_large_scale`);
//! each prints the rows/series of the corresponding artefact from this
//! reproduction's simulator, next to the paper's reference numbers where those are
//! scale-independent. Criterion micro-benchmarks for the individual kernels live in
//! `benches/`.
//!
//! Measurement methodology follows the paper (which uses LibLSB): experiments are
//! repeated until the 95% confidence interval of the median is within 5% of the
//! median (with a configurable repetition cap), and the median is reported.
//!
//! The experiment scale is controlled with the `RMATC_SCALE` environment variable
//! (`tiny`, `small`, `medium`; default `tiny`) so the full suite runs in minutes on
//! a laptop while still exposing every code path the paper exercises.
//!
//! # Paper map
//!
//! | Binary (`src/bin/`) | Paper artefact | What it reproduces |
//! |---|---|---|
//! | `table2_graphs` | Table II | The evaluation graphs and their size/skew columns |
//! | `table3_intersection` | Table III | Shared-memory kernel comparison (SSI, binary search, hybrid, plus this reproduction's SIMD/galloping upgrades) |
//! | `fig1_reuse` | Figure 1 | Remote-access data-reuse distribution motivating caching |
//! | `fig4_reuse_skew` | Figure 4 | Reuse vs degree skew |
//! | `fig5_entry_sizes` | Figure 5 | Cached-entry size distribution |
//! | `fig6_shared_scaling` | Figure 6 | Shared-memory strong scaling of the intersection strategies |
//! | `fig7_cache_sweep` | Figure 7 | LCC runtime vs cache budget, offsets-only / adjacencies-only panels |
//! | `fig8_scores` | Figure 8 | LRU vs degree-centrality eviction scores |
//! | `fig9_small_scale` | Figure 9 | Small-scale distributed comparison (non-cached, cached, TriC) |
//! | `fig10_large_scale` | Figure 10 | Large-scale distributed runs |
//! | `text_comm_fractions` | §IV-C prose | Communication-time fractions quoted in the text |
//! | `bench-diff` | — (this reproduction) | Per-commit regression gate over the criterion history, with per-benchmark thresholds |
//! | `rmatc-calibrate` | — (this reproduction) | ATLAS-style cost-model calibration front end (see `docs/TUNING.md`) |

pub mod history;
pub mod measure;
pub mod runs;
pub mod table;

pub use history::{compare_latest, parse_history, Comparison, HistoryRun};
pub use measure::{measure_until, Measurement};
pub use runs::{experiment_scale, fmt_ms, fmt_ns, ranks_small_scale, seed};
pub use table::Table;
