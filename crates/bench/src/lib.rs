//! Benchmark harness reproducing the paper's evaluation.
//!
//! Every table and figure of Section IV has a dedicated binary in `src/bin/`
//! (`table2_graphs`, `table3_intersection`, `fig1_reuse`, …, `fig10_large_scale`);
//! each prints the rows/series of the corresponding artefact from this
//! reproduction's simulator, next to the paper's reference numbers where those are
//! scale-independent. Criterion micro-benchmarks for the individual kernels live in
//! `benches/`.
//!
//! Measurement methodology follows the paper (which uses LibLSB): experiments are
//! repeated until the 95% confidence interval of the median is within 5% of the
//! median (with a configurable repetition cap), and the median is reported.
//!
//! The experiment scale is controlled with the `RMATC_SCALE` environment variable
//! (`tiny`, `small`, `medium`; default `tiny`) so the full suite runs in minutes on
//! a laptop while still exposing every code path the paper exercises.

pub mod history;
pub mod measure;
pub mod runs;
pub mod table;

pub use history::{compare_latest, parse_history, Comparison, HistoryRun};
pub use measure::{measure_until, Measurement};
pub use runs::{experiment_scale, fmt_ms, fmt_ns, ranks_small_scale, seed};
pub use table::Table;
