//! Bench-history parsing and regression comparison.
//!
//! The vendored criterion harness appends one JSON line per run to a history
//! file (`cargo bench ... -- --history bench-history/<bench>.ndjson`): commit
//! hash, timestamp, host metadata, and every benchmark record. This module
//! reads that format back — via the `serde` facade's JSON value tree
//! (`serde::json`) — and compares the newest run against the previous one so
//! CI can fail on kernel regressions.

use std::collections::BTreeMap;
use std::fmt;

/// Host metadata stamped on every history line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Host {
    pub cpus: u64,
    pub arch: String,
    pub os: String,
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} / {} cpus", self.os, self.arch, self.cpus)
    }
}

/// One benchmark's measurement within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub group: String,
    pub bench: String,
    pub median_ns: f64,
    /// Run-to-run spread of the per-repeat medians (percent) when the run
    /// was recorded with `--repeat N`; `0.0` for single runs and for history
    /// lines written before the field existed (it parses as optional).
    pub spread_pct: f64,
}

impl BenchRecord {
    /// The stable identity a record is matched on across runs.
    pub fn key(&self) -> String {
        if self.group.is_empty() {
            self.bench.clone()
        } else {
            format!("{}/{}", self.group, self.bench)
        }
    }
}

/// One appended history line: a full benchmark run at one commit.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRun {
    pub commit: String,
    pub timestamp: u64,
    pub host: Host,
    pub records: Vec<BenchRecord>,
}

/// Outcome of comparing one benchmark across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub key: String,
    pub old_median_ns: f64,
    pub new_median_ns: f64,
    /// Spread of the newest run's repeats (percent) — context for judging
    /// whether a flagged change is signal or measurement noise.
    pub new_spread_pct: f64,
}

impl Delta {
    /// Relative median change: positive = slower (regression).
    pub fn relative_change(&self) -> f64 {
        if self.old_median_ns <= 0.0 {
            return 0.0;
        }
        (self.new_median_ns - self.old_median_ns) / self.old_median_ns
    }
}

/// Comparison of the two newest runs of one history file.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub old_commit: String,
    pub new_commit: String,
    /// Hosts differ: timings are not comparable, the gate must not fire.
    pub host_mismatch: bool,
    pub deltas: Vec<Delta>,
}

impl Comparison {
    /// Benchmarks whose median regressed by more than `threshold`
    /// (e.g. `0.15` = 15%). Empty on host mismatch.
    pub fn regressions(&self, threshold: f64) -> Vec<&Delta> {
        if self.host_mismatch {
            return Vec::new();
        }
        self.deltas
            .iter()
            .filter(|d| d.relative_change() > threshold)
            .collect()
    }
}

/// Parses a history file's content (one JSON object per line; blank lines and
/// unparsable lines are skipped with a message to stderr).
pub fn parse_history(content: &str) -> Vec<HistoryRun> {
    content
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .filter_map(|(i, line)| match parse_run(line) {
            Some(run) => Some(run),
            None => {
                eprintln!("skipping malformed history line {}", i + 1);
                None
            }
        })
        .collect()
}

/// Compares the newest run against the one before it. `None` when the history
/// holds fewer than two runs (nothing to gate against yet).
pub fn compare_latest(runs: &[HistoryRun]) -> Option<Comparison> {
    let [.., old, new] = runs else {
        return None;
    };
    let old_by_key: BTreeMap<String, &BenchRecord> =
        old.records.iter().map(|r| (r.key(), r)).collect();
    let deltas = new
        .records
        .iter()
        .filter_map(|record| {
            let old_record = old_by_key.get(&record.key())?;
            Some(Delta {
                key: record.key(),
                old_median_ns: old_record.median_ns,
                new_median_ns: record.median_ns,
                new_spread_pct: record.spread_pct,
            })
        })
        .collect();
    Some(Comparison {
        old_commit: old.commit.clone(),
        new_commit: new.commit.clone(),
        host_mismatch: old.host != new.host,
        deltas,
    })
}

fn parse_run(line: &str) -> Option<HistoryRun> {
    let value = serde::json::parse_value_str(line).ok()?;
    let host = value.get("host")?;
    let records = value
        .get("records")?
        .as_array()?
        .iter()
        .map(|r| {
            Some(BenchRecord {
                group: r.get("group")?.as_str()?.to_string(),
                bench: r.get("bench")?.as_str()?.to_string(),
                median_ns: r.get("median_ns")?.as_f64()?,
                spread_pct: r.get("spread_pct").and_then(|v| v.as_f64()).unwrap_or(0.0),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(HistoryRun {
        commit: value.get("commit")?.as_str()?.to_string(),
        timestamp: value.get("timestamp")?.as_f64()? as u64,
        host: Host {
            cpus: host.get("cpus")?.as_f64()? as u64,
            arch: host.get("arch")?.as_str()?.to_string(),
            os: host.get("os")?.as_str()?.to_string(),
        },
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(commit: &str, cpus: u64, medians: &[(&str, f64)]) -> String {
        let records: Vec<String> = medians
            .iter()
            .map(|(bench, median)| {
                format!(
                    "{{\"group\": \"g\", \"bench\": {bench:?}, \"median_ns\": {median}, \
                     \"mean_ns\": {median}, \"samples\": 10, \"iters_per_sample\": 1, \
                     \"throughput_elems\": null, \"elems_per_us\": null}}"
                )
            })
            .collect();
        format!(
            "{{\"commit\": {commit:?}, \"timestamp\": 1700000000, \
             \"host\": {{\"cpus\": {cpus}, \"arch\": \"x86_64\", \"os\": \"linux\"}}, \
             \"records\": [{}]}}",
            records.join(", ")
        )
    }

    #[test]
    fn round_trips_the_writer_format() {
        let content = format!(
            "{}\n{}\n",
            line("aaa", 4, &[("k1", 100.0), ("k2", 50.0)]),
            line("bbb", 4, &[("k1", 130.0), ("k2", 40.0)])
        );
        let runs = parse_history(&content);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].commit, "aaa");
        assert_eq!(runs[1].records.len(), 2);
        assert_eq!(runs[1].records[0].key(), "g/k1");
    }

    #[test]
    fn flags_regressions_beyond_threshold() {
        let content = format!(
            "{}\n{}\n",
            line("old", 4, &[("fast", 100.0), ("slow", 100.0)]),
            line("new", 4, &[("fast", 105.0), ("slow", 130.0)])
        );
        let comparison = compare_latest(&parse_history(&content)).unwrap();
        assert!(!comparison.host_mismatch);
        let regressed = comparison.regressions(0.15);
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "g/slow");
        assert!((regressed[0].relative_change() - 0.30).abs() < 1e-9);
    }

    #[test]
    fn host_mismatch_disarms_the_gate() {
        let content = format!(
            "{}\n{}\n",
            line("old", 4, &[("k", 100.0)]),
            line("new", 16, &[("k", 400.0)])
        );
        let comparison = compare_latest(&parse_history(&content)).unwrap();
        assert!(comparison.host_mismatch);
        assert!(comparison.regressions(0.15).is_empty());
    }

    #[test]
    fn single_run_has_nothing_to_compare() {
        let runs = parse_history(&line("only", 4, &[("k", 1.0)]));
        assert_eq!(runs.len(), 1);
        assert!(compare_latest(&runs).is_none());
    }

    #[test]
    fn compares_the_two_newest_of_many() {
        let content = format!(
            "{}\n{}\n{}\n",
            line("a", 4, &[("k", 500.0)]),
            line("b", 4, &[("k", 100.0)]),
            line("c", 4, &[("k", 101.0)])
        );
        let comparison = compare_latest(&parse_history(&content)).unwrap();
        assert_eq!(comparison.old_commit, "b");
        assert_eq!(comparison.new_commit, "c");
        assert!(comparison.regressions(0.15).is_empty());
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let content = format!("not json\n{}\n{{\"half\":\n", line("ok", 4, &[("k", 1.0)]));
        let runs = parse_history(&content);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].commit, "ok");
    }

    #[test]
    fn spread_parses_and_defaults_for_old_lines() {
        // A pre-`--repeat` line (no spread_pct field) parses with 0.0 ...
        let old_format = line("aaa", 4, &[("k", 100.0)]);
        assert_eq!(parse_history(&old_format)[0].records[0].spread_pct, 0.0);
        // ... and a new-format line carries its spread into the delta.
        let new_format = "{\"commit\": \"bbb\", \"timestamp\": 1700000001, \
             \"host\": {\"cpus\": 4, \"arch\": \"x86_64\", \"os\": \"linux\"}, \
             \"records\": [{\"group\": \"g\", \"bench\": \"k\", \"median_ns\": 110.0, \
             \"mean_ns\": 110.0, \"samples\": 10, \"iters_per_sample\": 1, \
             \"throughput_elems\": null, \"elems_per_us\": null, \"spread_pct\": 7.25}]}";
        let content = format!("{old_format}\n{new_format}\n");
        let comparison = compare_latest(&parse_history(&content)).unwrap();
        assert_eq!(comparison.deltas.len(), 1);
        assert!((comparison.deltas[0].new_spread_pct - 7.25).abs() < 1e-12);
    }

    #[test]
    fn new_benchmarks_without_baseline_are_ignored() {
        let content = format!(
            "{}\n{}\n",
            line("old", 4, &[("k", 100.0)]),
            line("new", 4, &[("k", 100.0), ("fresh", 1.0)])
        );
        let comparison = compare_latest(&parse_history(&content)).unwrap();
        assert_eq!(comparison.deltas.len(), 1);
    }
}
