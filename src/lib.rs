//! `rmatc` — asynchronous distributed-memory triangle counting and LCC with RMA
//! caching (reproduction of Strausz et al., IPDPS 2022).
//!
//! This umbrella crate re-exports the workspace's public API so applications can
//! depend on a single crate:
//!
//! * [`graph`] — graph loading, generation, cleaning, CSR and partitioning.
//! * [`rma`] — the simulated MPI-3 RMA substrate (windows, one-sided gets, network
//!   cost model).
//! * [`clampi`] — the CLaMPI RMA caching layer with application-defined scores.
//! * [`core`] — intersection kernels (scalar, SIMD/branchless, binary-search and
//!   galloping, with the per-edge hybrid cost model), shared-memory LCC with
//!   intersection-, vertex- or edge-parallel outer loops, and the fully
//!   asynchronous distributed LCC/TC algorithm, plus the resident similarity
//!   query service built on it.
//! * [`tric`] — the TriC bulk-synchronous baseline.
//!
//! # Quickstart
//!
//! ```
//! use rmatc::core::{DistConfig, DistLcc};
//! use rmatc::graph::gen::{GraphGenerator, RmatGenerator};
//!
//! // Build a small R-MAT graph with the paper's skew parameters.
//! let graph = RmatGenerator::paper(10, 8).generate_cleaned(42).into_csr();
//! // Run the asynchronous distributed LCC on 4 simulated ranks with caching.
//! let config = DistConfig::cached(4, 1 << 20).with_degree_scores();
//! let result = DistLcc::new(config).run(&graph);
//! assert_eq!(result.lcc.len(), graph.vertex_count());
//! assert!(result.triangle_count > 0);
//! ```

pub use rmatc_clampi as clampi;
pub use rmatc_core as core;
pub use rmatc_graph as graph;
pub use rmatc_rma as rma;
pub use rmatc_tric as tric;

/// Convenience prelude with the types most applications need.
pub mod prelude {
    pub use rmatc_clampi::{
        ClampiConfig, ConsistencyMode, EvictionPolicyKind, ScorePolicy, ShardedClampi,
    };
    pub use rmatc_core::{
        CacheSpec, CostModel, CostProfile, DistConfig, DistJaccard, DistLcc, DistResult,
        IntersectMethod, JaccardResult, LocalConfig, LocalLcc, LocalParallelism, Query,
        QueryAnswer, QueryEngine, QueryId, QueryResponse, RangeSchedule, ScoreMode, ServiceConfig,
        ServiceError, ServiceStats,
    };
    pub use rmatc_graph::datasets::{Dataset, DatasetScale};
    pub use rmatc_graph::gen::{
        BarabasiAlbert, EgoCircles, GraphGenerator, RmatGenerator, UniformRandom, WattsStrogatz,
    };
    pub use rmatc_graph::partition::{PartitionScheme, PartitionedGraph};
    pub use rmatc_graph::types::Direction;
    pub use rmatc_graph::{CompressedCsr, CsrGraph, EdgeList, GraphBuilder, GraphStorage};
    pub use rmatc_rma::{FaultPlan, NetworkModel, RetryPolicy, RmaError};
    pub use rmatc_tric::{Tric, TricConfig};
}
